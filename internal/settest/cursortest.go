// Paginated-iteration conformance battery: RunCursor checks that a
// core.Cursor implementation pages correctly — sequential exactness
// against a model, bounded page budgets, early stop, a round-trippable
// and corruption-rejecting token, and, under concurrent insert/remove
// churn, the anchor-consistency contract of resumable iteration:
//
//   - the union of all pages of one iteration never reports a key twice
//     (pages cover disjoint, advancing key windows);
//   - an anchor key (present, untouched, for the whole iteration) is
//     reported exactly once, with its original value — resuming from a
//     token never skips it and never re-reports it;
//   - keys never inserted never appear, and every page is ascending, so
//     the whole union is ascending (cursors promise key order on every
//     structure, hash tables included);
//   - tokens survive churn: an iteration that round-trips its token
//     through Encode/Decode/ResumeCursor between every two pages sees
//     exactly the same guarantees, because no server-side state exists.
//
// RunCursorResizable re-runs the concurrent battery while a dedicated
// goroutine grows and shrinks the partition width, so elastic composites
// prove their pagination correct across concurrent Resizes: a token
// minted under an 8-shard map must resume seamlessly under a 2- or
// 16-shard one.
package settest

import (
	"fmt"
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/xrand"
)

// RunCursor executes the paginated-iteration battery. There is no
// ordered parameter (unlike RunScanner): cursor pages are ascending by
// contract on every structure, because key order is the only order a
// churning structure can resume from.
func RunCursor(t *testing.T, f Factory) {
	t.Helper()
	t.Run("CursorSequentialModel", func(t *testing.T) { testCursorSequential(t, f) })
	t.Run("CursorPageBudget", func(t *testing.T) { testCursorPageBudget(t, f) })
	t.Run("CursorEarlyStop", func(t *testing.T) { testCursorEarlyStop(t, f) })
	t.Run("CursorTokenCodec", func(t *testing.T) { testCursorTokenCodec(t, f) })
	t.Run("CursorUnderChurn", func(t *testing.T) {
		runCursorUnderChurn(t, f(scanOptions()))
	})
}

// RunCursorSpec resolves an algorithm spec through the layered factory
// and runs the cursor battery against it.
func RunCursorSpec(t *testing.T, spec string) {
	t.Helper()
	f, err := core.NewFactory(spec)
	if err != nil {
		t.Fatalf("settest: resolving spec: %v", err)
	}
	RunCursor(t, Factory(f))
}

// RunCursorResizable executes the concurrent cursor battery while the
// partition width is cycled underneath it, exactly like RunResizable:
// pagination must stay duplicate-free and anchor-complete across any
// number of migrations, and tokens must stay valid across every swap.
func RunCursorResizable(t *testing.T, f Factory) {
	t.Helper()
	t.Run("CursorUnderResize", func(t *testing.T) {
		s := f(scanOptions())
		rz, ok := s.(core.Resizable)
		if !ok {
			t.Fatalf("settest: factory built %T, which is not core.Resizable", s)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var resizeErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := core.NewCtx(999)
			widths := []int{2, 8, 1, 4, 16, 3}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := rz.Resize(c, widths[i%len(widths)]); err != nil {
					resizeErr = err
					return
				}
			}
		}()
		runCursorUnderChurn(t, s)
		close(stop)
		wg.Wait()
		if resizeErr != nil {
			t.Fatalf("settest: Resize failed during the cursor battery: %v", resizeErr)
		}
	})
}

// RunCursorPageCost pins the page-cost contract of the Cursor extension
// — O(page), never O(structure) — using the refill counters of the page
// machinery (stats.Thread.PagePulls / PagePullKeys): a full paginated
// iteration over a pre-filled structure must deliver every key exactly
// once, in ascending order, while materializing O(pages·page) keys in
// total, not O(pages·table). The hash tables are the motivating case
// (their ordered key index replaced an O(table) collect-and-sort per
// page, which this battery would count at ~table/page times the
// budget), but any Cursor implementation must pass.
func RunCursorPageCost(t *testing.T, f Factory) {
	t.Helper()
	t.Run("CursorPageCost", func(t *testing.T) {
		const n = 10000
		const page = 100
		s := f(core.Options{ExpectedSize: n, KeySpan: 2 * n})
		if _, ok := s.(core.Cursor); !ok {
			t.Fatalf("settest: %T does not implement core.Cursor", s)
		}
		fill := ctx()
		for i := core.Key(0); i < n; i++ {
			if !s.Put(fill, 2*i, core.Value(i)) { // even keys over [0, 2n)
				t.Fatalf("fill insert %d failed", 2*i)
			}
		}
		c := ctx() // fresh stats slot: only the iteration's pulls count
		cur := s.(core.Cursor)
		pos, last := core.Key(0), core.Key(-1)
		total, pages := 0, 0
		for {
			var done bool
			pos, done = cur.CursorNext(c, pos, 2*n, page, func(k core.Key, v core.Value) bool {
				if k <= last {
					t.Fatalf("page delivered %d after %d: not ascending", k, last)
				}
				last = k
				total++
				return true
			})
			pages++
			if pages > n {
				t.Fatal("iteration never finished")
			}
			if done {
				break
			}
		}
		if total != n {
			t.Fatalf("iteration delivered %d keys, want %d", total, n)
		}
		if c.Stats.PagePulls == 0 || c.Stats.PagePullKeys == 0 {
			t.Fatal("page collects recorded no pulls: the refill counters are not wired")
		}
		// O(pages·page) with generous slack for seeks and boundary
		// refills; an O(pages·table) protocol would materialize about
		// (n/page)·n = 100x this budget.
		if budget := uint64(4 * total); c.Stats.PagePullKeys > budget {
			t.Fatalf("full iteration materialized %d keys for %d delivered over %d pages — O(pages·page) bound (%d) exceeded",
				c.Stats.PagePullKeys, total, pages, budget)
		}
	})
}

// paginate drives one full paginated iteration over [lo, hi), returning
// the union of all pages. Pages use the given budget; when resume is
// set, the token round-trips through Encode/Decode/ResumeCursor between
// every two pages (proving no server-side state is pinned). Violations
// of the per-page contract are reported as a non-empty string so churn
// goroutines can use it too.
func paginate(c *core.Ctx, s core.Set, lo, hi core.Key, pageSize int, resume bool) ([]core.ScanPair, string) {
	pc, err := core.OpenCursor(s, lo, hi)
	if err != nil {
		return nil, fmt.Sprintf("OpenCursor: %v", err)
	}
	var union []core.ScanPair
	// A page that is not done delivers at least one key, so a full
	// iteration takes at most one page per key plus the final one.
	maxPages := int(hi-lo) + 2
	for pages := 0; !pc.Done(); pages++ {
		if pages > maxPages {
			return nil, fmt.Sprintf("cursor over [%d, %d) still not done after %d pages", lo, hi, pages)
		}
		n := 0
		tok, done := pc.Next(c, pageSize, func(k core.Key, v core.Value) bool {
			union = append(union, core.ScanPair{K: k, V: v})
			n++
			return true
		})
		if n > pageSize && pageSize >= 1 {
			return nil, fmt.Sprintf("page delivered %d keys over budget %d", n, pageSize)
		}
		if !done && n == 0 {
			return nil, fmt.Sprintf("page over [%d, %d) delivered nothing but reported done=false", lo, hi)
		}
		if resume && !done {
			pc, err = core.ResumeCursor(s, tok)
			if err != nil {
				return nil, fmt.Sprintf("ResumeCursor(%q): %v", tok, err)
			}
		}
	}
	return union, ""
}

// testCursorSequential checks pagination against a model map with no
// concurrency: for every window and page size, the union of pages must
// equal the model slice exactly, in ascending order.
func testCursorSequential(t *testing.T, f Factory) {
	s := f(scanOptions())
	if _, ok := s.(core.Cursor); !ok {
		t.Fatalf("settest: %T does not implement core.Cursor", s)
	}
	c := ctx()
	rng := xrand.New(20260729)
	model := map[core.Key]core.Value{}
	pageSizes := []int{1, 3, 8, 64}
	for i := 0; i < 2000; i++ {
		k := core.Key(rng.Int63n(scanKeySpan))
		switch rng.Uint64n(3) {
		case 0:
			if _, in := model[k]; !in {
				model[k] = core.Value(i)
			}
			s.Put(c, k, core.Value(i))
		case 1:
			delete(model, k)
			s.Remove(c, k)
		}
		if i%100 != 0 {
			continue
		}
		lo := core.Key(rng.Int63n(scanKeySpan))
		hi := lo + core.Key(1+rng.Int63n(200))
		got, msg := paginate(c, s, lo, hi, pageSizes[(i/100)%len(pageSizes)], i%200 == 0)
		if msg != "" {
			t.Fatalf("step %d: %s", i, msg)
		}
		want := 0
		for k := range model {
			if k >= lo && k < hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("step %d: pagination of [%d, %d) returned %d keys, model has %d", i, lo, hi, len(got), want)
		}
		if msg := snapshotViolation(got, lo, hi, true, nil, func(k core.Key) bool {
			_, in := model[k]
			return in
		}); msg != "" {
			t.Fatalf("step %d: %s", i, msg)
		}
		for _, p := range got {
			if model[p.K] != p.V {
				t.Fatalf("step %d: pagination returned (%d, %d), model has value %d", i, p.K, p.V, model[p.K])
			}
		}
	}
	// Full-domain pagination equals the model.
	if got, msg := paginate(c, s, 0, scanKeySpan, 7, true); msg != "" {
		t.Fatal(msg)
	} else if len(got) != len(model) {
		t.Fatalf("full pagination returned %d keys, model has %d", len(got), len(model))
	}
}

// testCursorPageBudget pins the page-budget arithmetic on a dense fill:
// exact page count, exact page sizes, done exactly at the end.
func testCursorPageBudget(t *testing.T, f Factory) {
	s := f(scanOptions())
	c := ctx()
	for k := core.Key(0); k < 100; k++ {
		s.Put(c, k, k)
	}
	pc, err := core.OpenCursor(s, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	pages := 0
	total := 0
	for !pc.Done() {
		n := 0
		_, done := pc.Next(c, 10, func(k core.Key, v core.Value) bool {
			if k != core.Key(total) || v != core.Value(total) {
				t.Fatalf("page %d visited (%d, %d), want (%d, %d)", pages, k, v, total, total)
			}
			n++
			total++
			return true
		})
		pages++
		if n != 10 {
			t.Fatalf("page %d delivered %d keys on a dense fill, want 10", pages, n)
		}
		if done != (total == 100) {
			t.Fatalf("page %d reported done=%v after %d keys", pages, done, total)
		}
		if pages > 10 {
			t.Fatal("dense fill took more than 10 pages of 10")
		}
	}
	if pages != 10 || total != 100 {
		t.Fatalf("dense fill paged as %d pages / %d keys, want 10 / 100", pages, total)
	}
	// A zero/negative budget clamps to 1 and still makes progress.
	pc, _ = core.OpenCursor(s, 0, 100)
	n := 0
	if _, done := pc.Next(c, 0, func(core.Key, core.Value) bool { n++; return true }); done || n != 1 {
		t.Fatalf("clamped page visited %d keys (done=%v), want 1 key, not done", n, done)
	}
}

// testCursorEarlyStop checks the early-termination contract: a callback
// that stops mid-page ends the page after exactly its keys, and the
// returned token resumes precisely at the next key — nothing skipped,
// nothing re-delivered.
func testCursorEarlyStop(t *testing.T, f Factory) {
	s := f(scanOptions())
	c := ctx()
	for k := core.Key(0); k < 50; k++ {
		s.Put(c, k, k)
	}
	pc, err := core.OpenCursor(s, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	tok, done := pc.Next(c, 20, func(core.Key, core.Value) bool {
		calls++
		return calls < 7
	})
	if done || calls != 7 {
		t.Fatalf("early stop: Next reported done=%v after %d calls, want false after 7", done, calls)
	}
	rc, err := core.ResumeCursor(s, tok)
	if err != nil {
		t.Fatal(err)
	}
	var got []core.Key
	for !rc.Done() {
		rc.Next(c, 20, func(k core.Key, v core.Value) bool {
			got = append(got, k)
			return true
		})
	}
	if len(got) != 43 || got[0] != 7 || got[len(got)-1] != 49 {
		t.Fatalf("resume after early stop delivered %d keys [%v..], want 43 starting at 7", len(got), got[0])
	}
}

// testCursorTokenCodec checks the opaque-token contract end to end
// against a live structure: round-trip identity, rejection of corrupt
// tokens (error, never panic, never a silently different window), and
// resume equivalence.
func testCursorTokenCodec(t *testing.T, f Factory) {
	s := f(scanOptions())
	c := ctx()
	for k := core.Key(0); k < 64; k++ {
		s.Put(c, k, k)
	}
	pc, err := core.OpenCursor(s, 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	tok, _ := pc.Next(c, 5, func(core.Key, core.Value) bool { return true })
	dec, err := core.DecodeCursorToken(tok)
	if err != nil {
		t.Fatalf("decoding a live token: %v", err)
	}
	if dec.Lo != 10 || dec.Hi != 60 || dec.Pos != 15 {
		t.Fatalf("live token decoded to %+v, want {Lo:10 Hi:60 Pos:15}", dec)
	}
	if dec.Encode() != tok {
		t.Fatal("token round-trip changed the wire form")
	}
	for _, corrupt := range []string{"", "not-a-token", tok[:len(tok)-1], tok + "x"} {
		if _, err := core.ResumeCursor(s, corrupt); err == nil {
			t.Fatalf("corrupt token %q resumed without error", corrupt)
		}
	}
	// Bit-level corruption of a real token must be rejected too.
	for i := 0; i < len(tok); i += 5 {
		alt := byte('A')
		if tok[i] == alt {
			alt = 'B'
		}
		if _, err := core.ResumeCursor(s, tok[:i]+string(alt)+tok[i+1:]); err == nil {
			t.Fatalf("token with flipped char %d resumed without error", i)
		}
	}
}

// runCursorUnderChurn is the concurrent heart of the battery: anchors
// (even keys, never updated after setup) interleave with churn keys (odd
// keys, hammered by updaters) while paginators run full iterations over
// random windows with random page budgets, half of them round-tripping
// the token between pages. Every iteration's union must satisfy
// snapshotViolation — in particular no anchor may be missed or
// double-reported across a whole paginated iteration, which is exactly
// the no-lost-keys/no-duplicates contract of resumable cursors. The
// structure is taken pre-built so RunCursorResizable can race the same
// body against Resize.
func runCursorUnderChurn(t *testing.T, s core.Set) {
	if _, ok := s.(core.Cursor); !ok {
		t.Fatalf("settest: %T does not implement core.Cursor", s)
	}
	c0 := ctx()
	anchors := map[core.Key]core.Value{}
	for k := core.Key(0); k < scanKeySpan; k += 2 {
		if !s.Put(c0, k, anchorVal(k)) {
			t.Fatalf("anchor insert %d failed", k)
		}
		anchors[k] = anchorVal(k)
	}
	churnOK := func(k core.Key) bool { return k%2 == 1 }

	const updaters = 4
	const paginators = 2
	iters := scale(3000)
	runs := scale(60) // full paginated iterations per paginator
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w)*2654435761 + 13)
			for i := 0; i < iters; i++ {
				k := core.Key(1 + 2*rng.Int63n(scanKeySpan/2)) // odd keys only
				if rng.Bool(0.5) {
					s.Put(c, k, k)
				} else {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	errs := make(chan string, paginators)
	for r := 0; r < paginators; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := core.NewCtx(100 + r)
			rng := xrand.New(uint64(r) + 777)
			for i := 0; i < runs; i++ {
				lo := core.Key(rng.Int63n(scanKeySpan))
				hi := lo + core.Key(1+rng.Int63n(256))
				if hi > scanKeySpan {
					hi = scanKeySpan
				}
				page := 1 + int(rng.Uint64n(32))
				got, msg := paginate(c, s, lo, hi, page, i%2 == 0)
				if msg == "" {
					msg = snapshotViolation(got, lo, hi, true, anchors, churnOK)
				}
				if msg != "" {
					select {
					case errs <- msg:
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Quiesced: one full pagination must now be exact — anchors plus
	// whatever odd keys survived, matching Get key by key and Len.
	got, msg := paginate(c0, s, 0, scanKeySpan, 17, true)
	if msg != "" {
		t.Fatal(msg)
	}
	if msg := snapshotViolation(got, 0, scanKeySpan, true, anchors, churnOK); msg != "" {
		t.Fatal(msg)
	}
	for _, p := range got {
		if v, in := s.Get(c0, p.K); !in || v != p.V {
			t.Fatalf("quiesced pagination returned (%d, %d) but Get says (%d, %v)", p.K, p.V, v, in)
		}
	}
	if want := s.Len(); len(got) != want {
		t.Fatalf("quiesced full pagination returned %d keys, Len reports %d", len(got), want)
	}
}
