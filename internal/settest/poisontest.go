// The poisoning battery: the memory-reclamation overhaul's conformance
// suite. With an EBR domain attached, every remove retires its node
// through a reclaim callback that poisons the mapping (core.PoisonKey /
// core.PoisonValue) and recycles the node into a package pool — so a
// structure that lets a traversal reach a node past its grace period no
// longer fails silently: the reader observes an impossible mapping and
// the battery reports it (and under -race, the reclaim's poisoning
// stores race the late reader's loads, which the race detector flags
// even when the values happen to look plausible).
//
// The checks are value-shaped: every Put writes Value(k) for key k, so
// any Get or scan that returns ok must return exactly Value(k) — a
// poisoned value, a recycled node's new mapping, or a stale snapshot all
// break that equation. The battery sizes itself through scale(), parks
// with Gosched on a cadence, and bounds every loop, so it is safe on a
// single-CPU host.
package settest

import (
	"runtime"
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/xrand"
)

// poisonSpan is the key range of the battery: small, so removes
// constantly recycle nodes that concurrent readers are traversing.
const poisonSpan = 96

// RunPoison executes the poisoning battery against the factory: churn
// workers retire and recycle nodes while reader workers assert that no
// traversal ever observes a poisoned or recycled mapping, and the final
// quiesced drain must reclaim every retired node.
func RunPoison(t *testing.T, f Factory) {
	t.Helper()
	dom := ebr.NewDomain()
	s := f(core.Options{Domain: dom, ExpectedSize: poisonSpan})
	runPoison(t, s, dom, nil)
}

// RunPoisonSpec runs the poisoning battery against an algorithm spec
// resolved through the layered core factory.
func RunPoisonSpec(t *testing.T, spec string) {
	t.Helper()
	f, err := core.NewFactory(spec)
	if err != nil {
		t.Fatalf("settest: resolving spec: %v", err)
	}
	RunPoison(t, Factory(f))
}

// RunPoisonResizable runs the poisoning battery while a dedicated
// goroutine continuously resizes the composite — every published resize
// eagerly retires a whole superseded shard map, so this is the battery
// that proves teardown reclamation (ReclaimAll sweeps) never recycles a
// node out from under a straggling reader.
func RunPoisonResizable(t *testing.T, f Factory) {
	t.Helper()
	dom := ebr.NewDomain()
	s := f(core.Options{Domain: dom, ExpectedSize: poisonSpan})
	rz, ok := s.(core.Resizable)
	if !ok {
		t.Fatalf("settest: factory built %T, which is not core.Resizable", s)
	}
	runPoison(t, s, dom, rz)
}

func runPoison(t *testing.T, s core.Set, dom *ebr.Domain, rz core.Resizable) {
	scanner, _ := s.(core.Scanner)
	cursor, _ := s.(core.Cursor)
	iters := scale(4000)

	var wg, rwg sync.WaitGroup
	stop := make(chan struct{})
	var resizeErr error
	if rz != nil {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			// The resizer retires superseded shard maps through its own
			// record, exactly like the harness's elastic controller.
			c := core.NewCtx(999)
			c.Epoch = dom.Register()
			defer c.Epoch.Unregister()
			widths := []int{2, 8, 1, 4, 16, 3}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := rz.Resize(c, widths[i%len(widths)]); err != nil {
					resizeErr = err
					return
				}
				runtime.Gosched()
			}
		}()
	}

	// Churners: small key range, update-heavy — nodes retire, age through
	// their grace period, and recycle while the readers below traverse.
	const churners, readers = 2, 2
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			c.Epoch = dom.Register()
			defer c.Epoch.Unregister()
			rng := xrand.New(uint64(w)*0x9e3779b97f4a7c15 + 1)
			for i := 0; i < iters; i++ {
				k := core.Key(rng.Int63n(poisonSpan))
				if rng.Uint64n(2) == 0 {
					s.Put(c, k, core.Value(k))
				} else {
					s.Remove(c, k)
				}
				if i&63 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}

	// Readers: every observation must be the one mapping a live key can
	// have. The structures open their own epoch brackets — that discipline
	// is precisely what this battery verifies.
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(churners + w)
			c.Epoch = dom.Register()
			defer c.Epoch.Unregister()
			rng := xrand.New(uint64(w)*0x51af3c1d + 7)
			check := func(where string, k core.Key, v core.Value) bool {
				if k == core.PoisonKey || v == core.PoisonValue {
					t.Errorf("%s observed a poisoned node: key %d value %d", where, k, v)
					return false
				}
				if v != core.Value(k) {
					t.Errorf("%s observed impossible mapping %d -> %d (want %d): recycled or stale node", where, k, v, core.Value(k))
					return false
				}
				return true
			}
			for i := 0; i < iters; i++ {
				k := core.Key(rng.Int63n(poisonSpan))
				switch {
				case scanner != nil && i%16 == 5:
					scanner.Scan(c, 0, poisonSpan, func(k core.Key, v core.Value) bool {
						return check("Scan", k, v)
					})
				case cursor != nil && i%16 == 11:
					pos := core.Key(0)
					for done := false; !done; {
						pos, done = cursor.CursorNext(c, pos, poisonSpan, 8, func(k core.Key, v core.Value) bool {
							return check("CursorNext", k, v)
						})
					}
				default:
					if v, ok := s.Get(c, k); ok {
						check("Get", k, v)
					}
				}
				if i&63 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}

	// The workload decides the duration: once churners and readers are
	// done, stop the resizer and wait it out.
	wg.Wait()
	close(stop)
	rwg.Wait()
	if resizeErr != nil {
		t.Fatalf("settest: Resize failed during the poison battery: %v", resizeErr)
	}

	// Quiesced drain: all records unregistered; every advance now
	// succeeds, aging all orphaned limbo out of its grace period. Real
	// reclamation means nothing may stay stranded.
	dom.Advance()
	dom.Advance()
	dom.Advance()
	retired, reclaimed := dom.Stats()
	if reclaimed > retired {
		t.Fatalf("EBR reclaimed %d > retired %d", reclaimed, retired)
	}
	if reclaimed != retired {
		t.Errorf("quiesced drain left %d of %d retired nodes unreclaimed", retired-reclaimed, retired)
	}
}
