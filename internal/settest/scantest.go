// Range-scan conformance battery: RunScanner checks that a core.Scanner
// implementation returns linearizable snapshots — sequential exactness
// against a model, and, under concurrent insert/remove churn, snapshots
// consistent with *some* linearization of the history:
//
//   - per-key window consistency: a key that is present (absent) for the
//     whole scan window must (must not) be reported — concretely, anchor
//     keys that are never updated always appear with their original
//     values, and keys never inserted never appear;
//   - no duplicates, ever;
//   - ascending key order on structures that promise it;
//   - only in-range keys, and only keys the workload could have inserted.
//
// RunScannerResizable re-runs the concurrent battery while a dedicated
// goroutine grows and shrinks the partition width, so elastic composites
// prove their scans correct across concurrent Resizes.
package settest

import (
	"fmt"
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/xrand"
)

// RunScanner executes the range-scan battery. ordered declares whether
// the implementation promises ascending key order (every ordered
// structure and every combinator over them does; monolithic hash tables
// and their buckets do not).
func RunScanner(t *testing.T, f Factory, ordered bool) {
	t.Helper()
	t.Run("ScanSequentialModel", func(t *testing.T) { testScanSequential(t, f, ordered) })
	t.Run("ScanEarlyStop", func(t *testing.T) { testScanEarlyStop(t, f) })
	t.Run("ScanBounds", func(t *testing.T) { testScanBounds(t, f) })
	t.Run("ScanUnderChurn", func(t *testing.T) {
		runScanUnderChurn(t, f(scanOptions()), ordered)
	})
	t.Run("ScanContendedValidation", func(t *testing.T) { testScanContended(t, f, ordered) })
}

// RunScannerSpec resolves an algorithm spec through the layered factory
// and runs the scan battery against it.
func RunScannerSpec(t *testing.T, spec string, ordered bool) {
	t.Helper()
	f, err := core.NewFactory(spec)
	if err != nil {
		t.Fatalf("settest: resolving spec: %v", err)
	}
	RunScanner(t, Factory(f), ordered)
}

// RunScannerResizable executes the concurrent scan battery while the
// partition width is cycled underneath it, exactly like RunResizable:
// snapshots must stay consistent across any number of migrations.
func RunScannerResizable(t *testing.T, f Factory, ordered bool) {
	t.Helper()
	t.Run("ScanUnderResize", func(t *testing.T) {
		s := f(scanOptions())
		rz, ok := s.(core.Resizable)
		if !ok {
			t.Fatalf("settest: factory built %T, which is not core.Resizable", s)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var resizeErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := core.NewCtx(999)
			widths := []int{2, 8, 1, 4, 16, 3}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := rz.Resize(c, widths[i%len(widths)]); err != nil {
					resizeErr = err
					return
				}
			}
		}()
		runScanUnderChurn(t, s, ordered)
		close(stop)
		wg.Wait()
		if resizeErr != nil {
			t.Fatalf("settest: Resize failed during the scan battery: %v", resizeErr)
		}
	})
}

// scanOptions sizes the battery's structures: KeySpan pins the partition
// domain of range-partitioned composites to the battery's key range.
func scanOptions() core.Options {
	return core.Options{ExpectedSize: 512, KeySpan: scanKeySpan}
}

const scanKeySpan = 1024

// anchorVal distinguishes anchor mappings from churn mappings (which
// store v == k).
func anchorVal(k core.Key) core.Value { return core.Value(k)*2 + 1 }

// checkSnapshot verifies the invariants every collected scan must
// satisfy regardless of interleaving (see snapshotViolation, the one
// copy of the checker). anchors maps permanently-present keys to their
// fixed values; churnOK reports whether a non-anchor key could
// legitimately appear.
func checkSnapshot(t *testing.T, got []core.ScanPair, lo, hi core.Key, ordered bool,
	anchors map[core.Key]core.Value, churnOK func(core.Key) bool) {
	t.Helper()
	if msg := snapshotViolation(got, lo, hi, ordered, anchors, churnOK); msg != "" {
		t.Fatal(msg)
	}
}

// collect runs one Scan into a slice.
func collect(c *core.Ctx, sc core.Scanner, lo, hi core.Key) []core.ScanPair {
	var got []core.ScanPair
	sc.Scan(c, lo, hi, func(k core.Key, v core.Value) bool {
		got = append(got, core.ScanPair{K: k, V: v})
		return true
	})
	return got
}

// testScanSequential checks scans against a model map with no
// concurrency: every window must match the model's slice exactly.
func testScanSequential(t *testing.T, f Factory, ordered bool) {
	s := f(scanOptions())
	sc, ok := s.(core.Scanner)
	if !ok {
		t.Fatalf("settest: %T does not implement core.Scanner", s)
	}
	c := ctx()
	rng := xrand.New(20260729)
	model := map[core.Key]core.Value{}
	for i := 0; i < 2000; i++ {
		k := core.Key(rng.Int63n(scanKeySpan))
		switch rng.Uint64n(3) {
		case 0:
			if _, in := model[k]; !in {
				model[k] = core.Value(i)
			}
			s.Put(c, k, core.Value(i))
		case 1:
			delete(model, k)
			s.Remove(c, k)
		}
		if i%100 != 0 {
			continue
		}
		lo := core.Key(rng.Int63n(scanKeySpan))
		hi := lo + core.Key(1+rng.Int63n(200))
		got := collect(c, sc, lo, hi)
		want := 0
		for k := range model {
			if k >= lo && k < hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("step %d: scan [%d, %d) returned %d keys, model has %d", i, lo, hi, len(got), want)
		}
		checkSnapshot(t, got, lo, hi, ordered, nil, func(k core.Key) bool {
			_, in := model[k]
			return in
		})
		for _, p := range got {
			if model[p.K] != p.V {
				t.Fatalf("step %d: scan returned (%d, %d), model has value %d", i, p.K, p.V, model[p.K])
			}
		}
	}
	// Full-domain scan equals the model.
	if got := collect(c, sc, 0, scanKeySpan); len(got) != len(model) {
		t.Fatalf("full scan returned %d keys, model has %d", len(got), len(model))
	}
}

// testScanEarlyStop checks the early-termination contract: a callback
// that stops must end the scan (return false) after exactly its keys.
func testScanEarlyStop(t *testing.T, f Factory) {
	s := f(scanOptions())
	sc := s.(core.Scanner)
	c := ctx()
	for k := core.Key(0); k < 100; k++ {
		s.Put(c, k, k)
	}
	calls := 0
	done := sc.Scan(c, 0, 100, func(core.Key, core.Value) bool {
		calls++
		return calls < 7
	})
	if done || calls != 7 {
		t.Fatalf("early stop: Scan returned %v after %d calls, want false after 7", done, calls)
	}
	if !sc.Scan(c, 0, 100, func(core.Key, core.Value) bool { return true }) {
		t.Fatal("complete scan reported early stop")
	}
}

// testScanBounds checks degenerate windows.
func testScanBounds(t *testing.T, f Factory) {
	s := f(scanOptions())
	sc := s.(core.Scanner)
	c := ctx()
	s.Put(c, 10, 100)
	for _, w := range []struct{ lo, hi core.Key }{{5, 5}, {9, 5}, {11, 20}, {0, 10}} {
		if got := collect(c, sc, w.lo, w.hi); len(got) != 0 {
			t.Fatalf("scan [%d, %d) around a lone key at 10 returned %v", w.lo, w.hi, got)
		}
	}
	if got := collect(c, sc, 10, 11); len(got) != 1 || got[0].K != 10 || got[0].V != 100 {
		t.Fatalf("pinpoint scan [10, 11) = %v, want [(10, 100)]", got)
	}
}

// runScanUnderChurn is the concurrent heart of the battery: anchors
// (even keys, never updated after setup) interleave with churn keys (odd
// keys, hammered by updaters) while scanners take random windows. Every
// snapshot must satisfy checkSnapshot; anchors in particular are
// present for every scan's whole window and must never be missed. The
// structure is taken pre-built so RunScannerResizable can race the same
// body against Resize.
func runScanUnderChurn(t *testing.T, s core.Set, ordered bool) {
	sc, ok := s.(core.Scanner)
	if !ok {
		t.Fatalf("settest: %T does not implement core.Scanner", s)
	}
	c0 := ctx()
	anchors := map[core.Key]core.Value{}
	for k := core.Key(0); k < scanKeySpan; k += 2 {
		if !s.Put(c0, k, anchorVal(k)) {
			t.Fatalf("anchor insert %d failed", k)
		}
		anchors[k] = anchorVal(k)
	}
	churnOK := func(k core.Key) bool { return k%2 == 1 }

	// Both sides run fixed iteration budgets rather than gating on each
	// other: the overlap is what matters, and bounded counts keep the
	// battery's wall time predictable on few-core CI hosts even under
	// the race detector.
	const updaters = 4
	const scanners = 2
	iters := scale(3000)
	scans := scale(120)
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w)*2654435761 + 13)
			for i := 0; i < iters; i++ {
				k := core.Key(1 + 2*rng.Int63n(scanKeySpan/2)) // odd keys only
				if rng.Bool(0.5) {
					s.Put(c, k, k)
				} else {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	errs := make(chan string, scanners)
	for r := 0; r < scanners; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := core.NewCtx(100 + r)
			rng := xrand.New(uint64(r) + 777)
			for i := 0; i < scans; i++ {
				lo := core.Key(rng.Int63n(scanKeySpan))
				hi := lo + core.Key(1+rng.Int63n(256))
				if hi > scanKeySpan {
					hi = scanKeySpan
				}
				got := collect(c, sc, lo, hi)
				if msg := snapshotViolation(got, lo, hi, ordered, anchors, churnOK); msg != "" {
					select {
					case errs <- msg:
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Quiesced: one last full scan must now be exact — anchors plus
	// whatever odd keys survived, matching Get key by key.
	got := collect(c0, sc, 0, scanKeySpan)
	checkSnapshot(t, got, 0, scanKeySpan, ordered, anchors, churnOK)
	for _, p := range got {
		if v, in := s.Get(c0, p.K); !in || v != p.V {
			t.Fatalf("quiesced scan returned (%d, %d) but Get says (%d, %v)", p.K, p.V, v, in)
		}
	}
	if want := s.Len(); len(got) != want {
		t.Fatalf("quiesced full scan returned %d keys, Len reports %d", len(got), want)
	}
}

// snapshotViolation is checkSnapshot for goroutines that cannot call
// t.Fatalf: it returns a description of the first violation, or "".
func snapshotViolation(got []core.ScanPair, lo, hi core.Key, ordered bool,
	anchors map[core.Key]core.Value, churnOK func(core.Key) bool) string {
	seen := make(map[core.Key]bool, len(got))
	for i, p := range got {
		switch {
		case p.K < lo || p.K >= hi:
			return fmt.Sprintf("scan [%d, %d) returned out-of-range key %d", lo, hi, p.K)
		case seen[p.K]:
			return fmt.Sprintf("scan [%d, %d) returned key %d twice", lo, hi, p.K)
		case ordered && i > 0 && got[i-1].K >= p.K:
			return fmt.Sprintf("scan [%d, %d) out of order: key %d before %d", lo, hi, got[i-1].K, p.K)
		}
		seen[p.K] = true
		if want, isAnchor := anchors[p.K]; isAnchor {
			if p.V != want {
				return fmt.Sprintf("anchor key %d scanned with value %d, want %d", p.K, p.V, want)
			}
		} else if !churnOK(p.K) {
			return fmt.Sprintf("scan [%d, %d) returned phantom key %d", lo, hi, p.K)
		}
	}
	for k := range anchors {
		if k >= lo && k < hi && !seen[k] {
			return fmt.Sprintf("scan [%d, %d) missed anchor key %d: present for the whole scan window", lo, hi, k)
		}
	}
	return ""
}

// testScanContended drives the optimistic protocol into its retry and
// fallback paths: a tiny hot range under maximal update pressure, with
// scanners pinned to exactly that range. Anchor consistency must survive
// even when every optimistic attempt is invalidated.
func testScanContended(t *testing.T, f Factory, ordered bool) {
	s := f(core.Options{ExpectedSize: 64, KeySpan: 32})
	sc, ok := s.(core.Scanner)
	if !ok {
		t.Fatalf("settest: %T does not implement core.Scanner", s)
	}
	c0 := ctx()
	anchors := map[core.Key]core.Value{}
	for k := core.Key(0); k < 32; k += 4 {
		s.Put(c0, k, anchorVal(k))
		anchors[k] = anchorVal(k)
	}
	churnOK := func(k core.Key) bool { return k%4 != 0 }
	iters := scale(4000)
	scans := scale(800) // the 32-key range keeps each scan cheap
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 31)
			for i := 0; i < iters; i++ {
				k := core.Key(rng.Int63n(32))
				if k%4 == 0 {
					continue
				}
				if rng.Bool(0.5) {
					s.Put(c, k, k)
				} else {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	errs := make(chan string, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := core.NewCtx(200 + r)
			for i := 0; i < scans; i++ {
				got := collect(c, sc, 0, 32)
				if msg := snapshotViolation(got, 0, 32, ordered, anchors, churnOK); msg != "" {
					select {
					case errs <- msg:
					default:
					}
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
