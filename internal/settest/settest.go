// Package settest is a reusable conformance and stress suite for core.Set
// implementations. Every algorithm package runs the same battery:
//
//   - sequential semantics against a model map (directed and randomized,
//     including a testing/quick property run);
//   - set-theoretic concurrent invariants: for every key, the number of
//     successful inserts minus successful removes equals its final
//     presence (each successful Put is an absent→present transition and
//     each successful Remove a present→absent transition, so the algebra
//     holds for any linearizable set regardless of interleaving);
//   - disjoint-key concurrency (each worker owns a key range; its slice of
//     the structure must match its private model exactly);
//   - EBR integration (when a domain is supplied, retired never exceeds
//     removed and readers never observe reclaimed state);
//   - concurrent-resize conformance for core.Resizable composites: the
//     same invariants hold while the partition width is grown and shrunk
//     underneath the workload (RunResizable).
package settest

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"csds/internal/core"
	"csds/internal/ebr"
	"csds/internal/xrand"
)

// Factory builds a fresh empty set with the given options.
type Factory func(core.Options) core.Set

// RunSpec executes the full battery against an algorithm specification —
// plain ("list/lazy") or composite ("sharded(16,list/lazy)") — resolved
// through the layered core factory. The caller's test package must import
// the implementation (and, for composites, csds/internal/combinator)
// packages so the registries are populated.
func RunSpec(t *testing.T, spec string) {
	t.Helper()
	f, err := core.NewFactory(spec)
	if err != nil {
		t.Fatalf("settest: resolving spec: %v", err)
	}
	Run(t, Factory(f))
}

// Run executes the full battery against the factory.
func Run(t *testing.T, f Factory) {
	t.Helper()
	t.Run("EmptyBehaviour", func(t *testing.T) { testEmpty(t, f) })
	t.Run("BasicSemantics", func(t *testing.T) { testBasic(t, f) })
	t.Run("OrderedFill", func(t *testing.T) { testOrderedFill(t, f) })
	t.Run("SequentialModel", func(t *testing.T) { testSequentialModel(t, f) })
	t.Run("QuickProperty", func(t *testing.T) { testQuickProperty(t, f) })
	t.Run("ConcurrentSharedKeys", func(t *testing.T) { testConcurrentShared(t, f) })
	t.Run("ConcurrentDisjointKeys", func(t *testing.T) { testConcurrentDisjoint(t, f) })
	t.Run("ConcurrentReadersDuringUpdates", func(t *testing.T) { testReadersDuringUpdates(t, f) })
}

// RunElided re-runs the concurrent battery with HTM elision enabled, for
// structures that support it.
func RunElided(t *testing.T, f Factory) {
	t.Helper()
	wrap := func(o core.Options) core.Set {
		o.ElideAttempts = 5
		return f(o)
	}
	t.Run("ElidedBasic", func(t *testing.T) { testBasic(t, wrap) })
	t.Run("ElidedSequentialModel", func(t *testing.T) { testSequentialModel(t, wrap) })
	t.Run("ElidedConcurrentShared", func(t *testing.T) { testConcurrentShared(t, wrap) })
	t.Run("ElidedConcurrentDisjoint", func(t *testing.T) { testConcurrentDisjoint(t, wrap) })
}

// RunResizable executes the concurrent battery against a core.Resizable
// factory while a dedicated goroutine resizes the structure the whole
// time, cycling the width up and down so both grow and shrink migrations
// race the workload. The linearizability checks are the same set-algebra
// and anchor-visibility arguments as the static battery: they must hold
// regardless of how often the partition is reshaped underneath.
func RunResizable(t *testing.T, f Factory) {
	t.Helper()
	resizing := func(name string, body func(t *testing.T, s core.Set)) {
		t.Run(name, func(t *testing.T) {
			s := f(core.Options{ExpectedSize: 256})
			rz, ok := s.(core.Resizable)
			if !ok {
				t.Fatalf("settest: factory built %T, which is not core.Resizable", s)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			var resizeErr error // written by the resizer, read after wg.Wait
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := core.NewCtx(999)
				widths := []int{2, 8, 1, 4, 16, 3}
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := rz.Resize(c, widths[i%len(widths)]); err != nil {
						resizeErr = err
						return
					}
				}
			}()
			body(t, s)
			close(stop)
			wg.Wait()
			if resizeErr != nil {
				t.Fatalf("settest: Resize failed during the battery: %v", resizeErr)
			}
			if w := rz.Width(); w < 1 {
				t.Fatalf("final Width = %d", w)
			}
		})
	}
	resizing("SharedKeysUnderResize", func(t *testing.T, s core.Set) {
		runConcurrentShared(t, s)
	})
	resizing("ReadersDuringResize", func(t *testing.T, s core.Set) {
		runReadersDuringUpdates(t, s)
	})
}

// RunEBR exercises the set with an EBR domain attached.
func RunEBR(t *testing.T, f Factory) {
	t.Helper()
	dom := ebr.NewDomain()
	s := f(core.Options{Domain: dom, ExpectedSize: 256})
	const workers = 4
	iters := scale(3000)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			c.Epoch = dom.Register()
			rng := xrand.New(uint64(w) + 99)
			for i := 0; i < iters; i++ {
				k := core.Key(rng.Int63n(128))
				c.EpochEnter()
				switch rng.Uint64n(3) {
				case 0:
					s.Put(c, k, k)
				case 1:
					s.Remove(c, k)
				default:
					s.Get(c, k)
				}
				c.EpochExit()
			}
		}(w)
	}
	wg.Wait()
	retired, reclaimed := dom.Stats()
	if reclaimed > retired {
		t.Fatalf("EBR reclaimed %d > retired %d", reclaimed, retired)
	}
}

func ctx() *core.Ctx { return core.NewCtx(0) }

// scale shrinks stress iteration counts under -short (the CI-sized
// battery): the interleaving coverage stays, the spin-heavy volume —
// which inflates badly on few-core hosts, where ticket-lock waiters and
// whole-map-copy updaters timeshare cores — drops fourfold. On a
// single-CPU host the volume halves again: with every worker timesharing
// one core, each spin-heavy iteration costs wall time instead of running
// in parallel, and the batteries' correctness arguments are about
// interleavings, not iteration totals — relying on generous timeouts
// there is exactly the timing dependence these suites must not have.
func scale(n int) int {
	if testing.Short() {
		n /= 4
	}
	if runtime.NumCPU() == 1 {
		n /= 2
	}
	if n < 1 {
		n = 1
	}
	return n
}

func testEmpty(t *testing.T, f Factory) {
	s := f(core.Options{})
	c := ctx()
	if _, ok := s.Get(c, 1); ok {
		t.Fatal("Get on empty set found a key")
	}
	if s.Remove(c, 1) {
		t.Fatal("Remove on empty set succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("empty Len = %d", s.Len())
	}
}

func testBasic(t *testing.T, f Factory) {
	s := f(core.Options{})
	c := ctx()
	if !s.Put(c, 10, 100) {
		t.Fatal("first Put failed")
	}
	if s.Put(c, 10, 999) {
		t.Fatal("duplicate Put succeeded")
	}
	if v, ok := s.Get(c, 10); !ok || v != 100 {
		t.Fatalf("Get(10) = (%d, %v), want (100, true) — duplicate Put must not overwrite", v, ok)
	}
	if _, ok := s.Get(c, 11); ok {
		t.Fatal("Get of absent key succeeded")
	}
	if !s.Remove(c, 10) {
		t.Fatal("Remove of present key failed")
	}
	if s.Remove(c, 10) {
		t.Fatal("second Remove succeeded")
	}
	if _, ok := s.Get(c, 10); ok {
		t.Fatal("Get after Remove succeeded")
	}
	// Reinsertion after removal.
	if !s.Put(c, 10, 7) {
		t.Fatal("reinsert failed")
	}
	if v, _ := s.Get(c, 10); v != 7 {
		t.Fatalf("reinsert value = %d", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func testOrderedFill(t *testing.T, f Factory) {
	s := f(core.Options{ExpectedSize: 512})
	c := ctx()
	// Ascending, descending and interleaved inserts stress the search
	// logic around both sentinels.
	for k := core.Key(0); k < 100; k++ {
		if !s.Put(c, k, k*2) {
			t.Fatalf("ascending Put(%d) failed", k)
		}
	}
	for k := core.Key(299); k >= 200; k-- {
		if !s.Put(c, k, k*2) {
			t.Fatalf("descending Put(%d) failed", k)
		}
	}
	for k := core.Key(0); k < 100; k++ {
		if v, ok := s.Get(c, k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
		if _, ok := s.Get(c, k+100); ok {
			t.Fatalf("Get(%d) found phantom", k+100)
		}
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	// Remove evens.
	for k := core.Key(0); k < 100; k += 2 {
		if !s.Remove(c, k) {
			t.Fatalf("Remove(%d) failed", k)
		}
	}
	for k := core.Key(0); k < 100; k++ {
		_, ok := s.Get(c, k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("after removal Get(%d) = %v, want %v", k, ok, want)
		}
	}
	if s.Len() != 150 {
		t.Fatalf("Len = %d, want 150", s.Len())
	}
}

func testSequentialModel(t *testing.T, f Factory) {
	s := f(core.Options{ExpectedSize: 128})
	c := ctx()
	rng := xrand.New(20240611)
	model := map[core.Key]core.Value{}
	for i := 0; i < scale(20000); i++ {
		k := core.Key(rng.Int63n(200))
		switch rng.Uint64n(3) {
		case 0:
			want := false
			if _, in := model[k]; !in {
				model[k] = core.Value(i)
				want = true
			}
			if got := s.Put(c, k, core.Value(i)); got != want {
				t.Fatalf("step %d: Put(%d) = %v, want %v", i, k, got, want)
			}
		case 1:
			_, want := model[k]
			delete(model, k)
			if got := s.Remove(c, k); got != want {
				t.Fatalf("step %d: Remove(%d) = %v, want %v", i, k, got, want)
			}
		default:
			wv, want := model[k]
			gv, got := s.Get(c, k)
			if got != want || (got && gv != wv) {
				t.Fatalf("step %d: Get(%d) = (%d, %v), want (%d, %v)", i, k, gv, got, wv, want)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("final Len = %d, model %d", s.Len(), len(model))
	}
}

func testQuickProperty(t *testing.T, f Factory) {
	// Property: any op sequence leaves the set equal to the model.
	prop := func(ops []uint16) bool {
		s := f(core.Options{})
		c := ctx()
		model := map[core.Key]core.Value{}
		for i, raw := range ops {
			k := core.Key(raw % 64)
			switch (raw / 64) % 3 {
			case 0:
				_, in := model[k]
				if !in {
					model[k] = core.Value(i)
				}
				if s.Put(c, k, core.Value(i)) == in {
					return false
				}
			case 1:
				_, in := model[k]
				delete(model, k)
				if s.Remove(c, k) != in {
					return false
				}
			default:
				_, in := model[k]
				if _, got := s.Get(c, k); got != in {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if gv, ok := s.Get(c, k); !ok || gv != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// testConcurrentShared hammers a small shared key space and checks the
// insert/remove algebra per key.
func testConcurrentShared(t *testing.T, f Factory) {
	runConcurrentShared(t, f(core.Options{ExpectedSize: 64}))
}

func runConcurrentShared(t *testing.T, s core.Set) {
	const workers = 8
	iters := scale(4000)
	const keySpace = 32
	type tally struct{ ins, rem int64 }
	tallies := make([][keySpace]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w)*7919 + 17)
			for i := 0; i < iters; i++ {
				k := core.Key(rng.Int63n(keySpace))
				if rng.Bool(0.5) {
					if s.Put(c, k, k) {
						tallies[w][k].ins++
					}
				} else {
					if s.Remove(c, k) {
						tallies[w][k].rem++
					}
				}
			}
		}(w)
	}
	wg.Wait()
	c := ctx()
	total := 0
	for k := 0; k < keySpace; k++ {
		var ins, rem int64
		for w := 0; w < workers; w++ {
			ins += tallies[w][k].ins
			rem += tallies[w][k].rem
		}
		_, present := s.Get(c, core.Key(k))
		delta := ins - rem
		if delta != 0 && delta != 1 {
			t.Fatalf("key %d: successful inserts - removes = %d (linearizability violated)", k, delta)
		}
		if (delta == 1) != present {
			t.Fatalf("key %d: delta %d but present=%v", k, delta, present)
		}
		if present {
			total++
		}
	}
	if got := s.Len(); got != total {
		t.Fatalf("Len = %d, but %d keys present", got, total)
	}
}

// testConcurrentDisjoint gives each worker a private key range; at the end
// each range must exactly match the worker's private model.
func testConcurrentDisjoint(t *testing.T, f Factory) {
	s := f(core.Options{ExpectedSize: 1024})
	const workers = 8
	const rangeSize = 64
	iters := scale(4000)
	models := make([]map[core.Key]core.Value, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w)*104729 + 5)
			base := core.Key(w * rangeSize)
			model := map[core.Key]core.Value{}
			for i := 0; i < iters; i++ {
				k := base + core.Key(rng.Int63n(rangeSize))
				switch rng.Uint64n(3) {
				case 0:
					v := core.Value(i)
					_, in := model[k]
					if !in {
						model[k] = v
					}
					if s.Put(c, k, v) == in {
						panic("disjoint Put disagreed with model")
					}
				case 1:
					_, in := model[k]
					delete(model, k)
					if s.Remove(c, k) != in {
						panic("disjoint Remove disagreed with model")
					}
				default:
					_, in := model[k]
					if _, got := s.Get(c, k); got != in {
						panic("disjoint Get disagreed with model")
					}
				}
			}
			models[w] = model
		}(w)
	}
	wg.Wait()
	c := ctx()
	want := 0
	for w := 0; w < workers; w++ {
		want += len(models[w])
		for k, v := range models[w] {
			if gv, ok := s.Get(c, k); !ok || gv != v {
				t.Fatalf("worker %d key %d: Get = (%d, %v), want (%d, true)", w, k, gv, ok, v)
			}
		}
	}
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
}

// testReadersDuringUpdates checks that concurrent readers always see a key
// that is never removed, while churn happens around it.
func testReadersDuringUpdates(t *testing.T, f Factory) {
	runReadersDuringUpdates(t, f(core.Options{ExpectedSize: 128}))
}

func runReadersDuringUpdates(t *testing.T, s core.Set) {
	c0 := ctx()
	const anchor = core.Key(500)
	if !s.Put(c0, anchor, 12345) {
		t.Fatal("anchor insert failed")
	}
	stop := make(chan struct{})
	var readers, updaters sync.WaitGroup
	var mu sync.Mutex
	bad := 0
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			c := core.NewCtx(100 + r)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok := s.Get(c, anchor); !ok || v != 12345 {
					mu.Lock()
					bad++
					mu.Unlock()
					return
				}
			}
		}(r)
	}
	for w := 0; w < 4; w++ {
		updaters.Add(1)
		go func(w int) {
			defer updaters.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 321)
			for i := 0; i < scale(5000); i++ {
				// Churn keys around (but never equal to) the anchor.
				k := core.Key(400 + rng.Int63n(200))
				if k == anchor {
					continue
				}
				if rng.Bool(0.5) {
					s.Put(c, k, k)
				} else {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	updaters.Wait()
	close(stop)
	readers.Wait()
	if bad != 0 {
		t.Fatal("a reader lost sight of the anchor key during unrelated churn")
	}
	if v, ok := s.Get(c0, anchor); !ok || v != 12345 {
		t.Fatal("anchor missing after churn")
	}
}
