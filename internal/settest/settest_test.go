// Tests for the conformance suite itself: the battery must pass on a
// trivially correct reference implementation (a mutex-guarded map), drive
// composite specs through the layered factory, and exercise the
// concurrent-resize harness against a well-behaved Resizable.
package settest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"csds/internal/core"

	// Populate the registries for the RunSpec test.
	_ "csds/internal/combinator"
	_ "csds/internal/list"
)

// refSet is the obviously linearizable reference: one mutex, one map.
type refSet struct {
	mu sync.Mutex
	m  map[core.Key]core.Value
}

func newRefSet(core.Options) core.Set {
	return &refSet{m: map[core.Key]core.Value{}}
}

func (r *refSet) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.m[k]
	return v, ok
}

func (r *refSet) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[k]; ok {
		return false
	}
	r.m[k] = v
	return true
}

func (r *refSet) Remove(c *core.Ctx, k core.Key) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.m[k]; !ok {
		return false
	}
	delete(r.m, k)
	return true
}

func (r *refSet) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Scan implements core.Scanner the obviously correct way: collect the
// range under the mutex (one true atomic snapshot), release, replay in
// key order.
func (r *refSet) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	r.mu.Lock()
	var buf []core.ScanPair
	for k, v := range r.m {
		if k >= lo && k < hi {
			buf = append(buf, core.ScanPair{K: k, V: v})
		}
	}
	r.mu.Unlock()
	core.SortScanPairs(buf)
	return core.ReplayScan(buf, f)
}

// CursorNext implements core.Cursor the obviously correct way: collect
// the in-range tail under the mutex, sort, deliver the first max.
func (r *refSet) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	r.mu.Lock()
	var buf []core.ScanPair
	for k, v := range r.m {
		if k >= pos && k < hi {
			buf = append(buf, core.ScanPair{K: k, V: v})
		}
	}
	r.mu.Unlock()
	return core.MergePage(buf, true, hi, max, f)
}

// The reference Batcher is the obviously correct one: each element is a
// point op under the mutex, applied in index order.
func (r *refSet) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	core.LoopMultiGet(c, r, keys, f)
}

func (r *refSet) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	core.LoopMultiPut(c, r, pairs, f)
}

func (r *refSet) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	core.LoopMultiRemove(c, r, keys, f)
}

// refResizable adds a no-op repartition (the map is its own single
// shard); it verifies the RunResizable harness machinery itself — width
// cycling, final checks — against an implementation that cannot fail.
type refResizable struct {
	*refSet
	width atomic.Int64
}

func newRefResizable(o core.Options) core.Set {
	rr := &refResizable{refSet: newRefSet(o).(*refSet)}
	rr.width.Store(1)
	return rr
}

func (r *refResizable) Resize(c *core.Ctx, n int) error {
	if n < 1 {
		n = 1
	}
	r.width.Store(int64(n))
	return nil
}

func (r *refResizable) Width() int { return int(r.width.Load()) }

// TestBatteryOnReferenceSet: the full battery accepts a correct set.
func TestBatteryOnReferenceSet(t *testing.T) {
	Run(t, newRefSet)
}

// TestEBROnReferenceSet: the EBR battery tolerates structures that never
// retire (retired stays 0, reclaimed never exceeds it).
func TestEBROnReferenceSet(t *testing.T) {
	RunEBR(t, newRefSet)
}

// TestRunResizableOnReference: the resize battery drives widths and
// passes on a correct Resizable.
func TestRunResizableOnReference(t *testing.T) {
	RunResizable(t, newRefResizable)
}

// TestRunSpecComposite: RunSpec resolves composite specifications through
// the layered core factory and runs them.
func TestRunSpecComposite(t *testing.T) {
	RunSpec(t, "sharded(2,list/lazy)")
}

// TestScannerBatteryOnReferenceSet: the scan battery accepts a correct
// scanner.
func TestScannerBatteryOnReferenceSet(t *testing.T) {
	RunScanner(t, newRefSet, true)
}

// TestScannerBatteryUnderResizeOnReference: the scan-under-resize harness
// itself passes against a Resizable whose scans cannot fail.
func TestScannerBatteryUnderResizeOnReference(t *testing.T) {
	RunScannerResizable(t, newRefResizable, true)
}

// TestRunScannerSpecComposite: spec resolution reaches the scan battery.
func TestRunScannerSpecComposite(t *testing.T) {
	RunScannerSpec(t, "sharded(2,list/lazy)", true)
}

// TestCursorBatteryOnReferenceSet: the cursor battery accepts a correct
// pagination implementation.
func TestCursorBatteryOnReferenceSet(t *testing.T) {
	RunCursor(t, newRefSet)
}

// TestCursorBatteryUnderResizeOnReference: the cursor-under-resize
// harness itself passes against a Resizable whose pages cannot fail.
func TestCursorBatteryUnderResizeOnReference(t *testing.T) {
	RunCursorResizable(t, newRefResizable)
}

// TestRunCursorSpecComposite: spec resolution reaches the cursor battery.
func TestRunCursorSpecComposite(t *testing.T) {
	RunCursorSpec(t, "sharded(2,list/lazy)")
}

// TestBatcherBatteryOnReferenceSet: the batched battery accepts a
// correct Batcher.
func TestBatcherBatteryOnReferenceSet(t *testing.T) {
	RunBatcher(t, newRefSet)
}

// TestBatcherBatteryUnderResizeOnReference: the batch-under-resize
// harness itself passes against a Resizable whose batches cannot fail.
func TestBatcherBatteryUnderResizeOnReference(t *testing.T) {
	RunBatcherResizable(t, newRefResizable)
}

// TestRunBatcherSpecComposite: spec resolution reaches the batch battery.
func TestRunBatcherSpecComposite(t *testing.T) {
	RunBatcherSpec(t, "sharded(2,list/lazy)")
}

// TestScale pins the iteration scaling contract: /4 under -short, /2
// again on single-CPU hosts (where spin-heavy workers timeshare one
// core), floored at 1.
func TestScale(t *testing.T) {
	want := 4000
	if testing.Short() {
		want = 1000
	}
	if runtime.NumCPU() == 1 {
		want /= 2
	}
	if got := scale(4000); got != want {
		t.Fatalf("scale(4000) = %d, want %d (short=%v, cpus=%d)", got, want, testing.Short(), runtime.NumCPU())
	}
	if got := scale(1); got != 1 {
		t.Fatalf("scale(1) = %d, want the floor of 1", got)
	}
}
