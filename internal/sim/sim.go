// Package sim is a model-driven multicore simulator used to regenerate the
// *shapes* of the paper's figures on hardware that cannot reproduce them
// natively (this environment exposes a single CPU; the paper used a
// 2-socket, 20-core/40-thread Xeon and a 4-core/8-thread TSX Haswell —
// see DESIGN.md §1 for the substitution rationale).
//
// The simulator advances simulated threads op by op (Monte Carlo over the
// same random streams as the runtime harness). Each operation's duration
// is assembled from a structure cost model (expected parse hops, write
// phase, locks per update) and a machine model (hop latency, cache-
// coherence degradation with active threads, cross-socket penalty,
// hyperthread sharing, multiprogramming quanta). Conflicts are sampled
// from the Section 6 birthday terms, so the simulator and the analytic
// model agree by construction on *why* blocking CSDSs behave practically
// wait-free: the conflict probability is simply small.
//
// The simulator is calibrated for shape, not absolute nanoseconds: who
// wins, by what rough factor, and where the knees fall.
package sim

import (
	"math"

	"csds/internal/birthday"
	"csds/internal/xrand"
)

// Machine describes the simulated host.
type Machine struct {
	Cores       int     // physical cores
	HWThreads   int     // hardware contexts (2 per core when SMT)
	SocketCores int     // cores per socket
	HopNs       float64 // latency of one pointer hop, single-threaded
	// CrossSocket is the extra hop cost factor once the second socket is
	// in use (the slope change past 10 threads in Figure 3).
	CrossSocket float64
	// SMTPenalty is the per-thread slowdown when both hardware contexts
	// of a core are busy.
	SMTPenalty float64
	// InvalidationFactor scales how much update traffic degrades
	// traversals via coherence misses.
	InvalidationFactor float64
	// QuantumNs / SwapNs model the multiprogrammed scheduler: a thread
	// runs ~Quantum then is off-CPU ~Swap when threads exceed HWThreads
	// (§5.4 measured ~12 ms on / ~37 ms off at 4 threads/context).
	QuantumNs float64
	SwapNs    float64
}

// PaperXeon models the 20-core Ivy Bridge of Sections 3–5.
func PaperXeon() Machine {
	return Machine{
		Cores: 20, HWThreads: 40, SocketCores: 10,
		HopNs: 6, CrossSocket: 0.9, SMTPenalty: 0.35,
		InvalidationFactor: 2.2,
		QuantumNs:          12e6, SwapNs: 37e6,
	}
}

// PaperHaswell models the 4-core TSX Haswell of §5.4 (Tables 2–3).
func PaperHaswell() Machine {
	return Machine{
		Cores: 4, HWThreads: 8, SocketCores: 4,
		HopNs: 5, CrossSocket: 0, SMTPenalty: 0.3,
		InvalidationFactor: 2.0,
		QuantumNs:          12e6, SwapNs: 37e6,
	}
}

// Structure is a cost/conflict model for one data-structure family.
type Structure struct {
	Name string
	// Hops returns the expected parse-phase pointer hops for a structure
	// of the given size.
	Hops func(size int) float64
	// WriteNs is the write-phase duration excluding lock transfer costs.
	WriteNs float64
	// OverheadNs is the fixed per-operation cost (hashing, call overhead,
	// key generation) independent of the traversal.
	OverheadNs float64
	// Locks is the average number of locks an update takes.
	Locks float64
	// B is the Section 6 collision term for k concurrent writers.
	B func(k, n int) float64
	// BTSX is the elided collision term (readers abort writers too).
	BTSX func(k, n, t int) float64
	// Waits: conflicts manifest as lock waiting (true) or restarts
	// (false — trylock/optimistic designs like BST-TK).
	Waits bool
	// Restarts: conflicts can also restart the parse phase (validation
	// failure designs).
	Restarts bool
	// TraversalFactor multiplies hop cost (wait-free indirection: ~2x,
	// Figure 2).
	TraversalFactor float64
	// SerializedUpdates: updates serialize on one hotspot (queues/stacks,
	// COW) — Section 7.
	SerializedUpdates bool
}

// The structure models used by the figures.

// ListModel is the lazy linked list.
func ListModel() Structure {
	return Structure{
		Name: "list", Hops: func(n int) float64 { return float64(n) / 2 },
		WriteNs: 40, OverheadNs: 110, Locks: 2, B: birthday.BLinkedList, BTSX: birthday.BLinkedListTSX,
		Waits: true, Restarts: true, TraversalFactor: 1,
	}
}

// HarrisListModel is the lock-free list (same traversal, CAS updates, no
// waiting).
func HarrisListModel() Structure {
	s := ListModel()
	s.Name = "list-lf"
	s.Waits = false
	s.WriteNs = 45
	return s
}

// WaitFreeListModel adds the descriptor indirection of Figure 2: roughly
// twice the pointer chasing plus helping overhead.
func WaitFreeListModel() Structure {
	s := ListModel()
	s.Name = "list-wf"
	s.Waits = false
	s.TraversalFactor = 2.05
	s.WriteNs = 160 // descriptor publish + phase bookkeeping
	return s
}

// SkipListModel is the Herlihy optimistic skip list.
func SkipListModel() Structure {
	return Structure{
		Name: "skiplist", Hops: func(n int) float64 { return 1.6 * math.Log2(float64(n)+2) },
		WriteNs: 90, OverheadNs: 110, Locks: 3.5, B: birthday.BLinkedList, BTSX: birthday.BLinkedListTSX,
		Waits: true, Restarts: true, TraversalFactor: 1,
	}
}

// HashModel is the per-bucket-lock lazy hash table (load factor 1).
func HashModel() Structure {
	return Structure{
		Name: "hashtable", Hops: func(int) float64 { return 1.6 },
		WriteNs: 35, OverheadNs: 110, Locks: 1, B: birthday.BHashTable, BTSX: birthday.BHashTableTSX,
		Waits: true, Restarts: false, TraversalFactor: 1,
	}
}

// BSTModel is BST-TK: trylocks, restarts instead of waits.
func BSTModel() Structure {
	return Structure{
		Name: "bst", Hops: func(n int) float64 { return 1.3 * math.Log2(float64(n)+2) },
		WriteNs: 50, OverheadNs: 110, Locks: 1.5, B: birthday.BLinkedList, BTSX: birthday.BLinkedListTSX,
		Waits: false, Restarts: true, TraversalFactor: 1,
	}
}

// QueueModel / StackModel: single-hotspot structures (Section 7).
func QueueModel() Structure {
	return Structure{
		Name: "queue", Hops: func(int) float64 { return 1 },
		WriteNs: 30, OverheadNs: 110, Locks: 1, Waits: true, TraversalFactor: 1,
		SerializedUpdates: true,
		B:                 func(k, n int) float64 { return 1 }, // all writers share the hotspot
	}
}

// StackModel is the single-lock stack.
func StackModel() Structure {
	s := QueueModel()
	s.Name = "stack"
	return s
}

// ModelFor maps registry kinds/names to models.
func ModelFor(kind string) (Structure, bool) {
	switch kind {
	case "list", "list/lazy":
		return ListModel(), true
	case "list/harris":
		return HarrisListModel(), true
	case "list/waitfree":
		return WaitFreeListModel(), true
	case "skiplist", "skiplist/herlihy":
		return SkipListModel(), true
	case "hashtable", "hashtable/lazy":
		return HashModel(), true
	case "bst", "bst/tk":
		return BSTModel(), true
	case "queue":
		return QueueModel(), true
	case "stack":
		return StackModel(), true
	}
	return Structure{}, false
}

// Config is one simulated experiment cell.
type Config struct {
	Machine     Machine
	Structure   Structure
	Threads     int
	Size        int
	UpdateRatio float64
	// SumP2 is the workload collision mass (0 = uniform over 2*Size keys;
	// the structure holds Size of them, matching §3.3).
	SumP2 float64
	// Ops is the number of operations simulated per thread.
	Ops int
	// ElideAttempts > 0 simulates TSX lock elision with that budget.
	ElideAttempts int
	// Multiprogram forces scheduler quanta even when Threads <= HWThreads.
	Multiprogram bool
	Seed         uint64
}

// Result carries the simulated metrics (same meanings as harness.Result).
type Result struct {
	ThroughputOpsPerSec float64
	PerThread           []float64
	PerThreadStddev     float64
	WaitFraction        float64
	RestartedFrac       float64
	RestartedFrac3      float64
	FallbackFrac        float64
	AbortFrac           float64 // speculative attempts that aborted
}

// effectiveHop returns the degraded hop latency for t active threads.
func (m Machine) effectiveHop(t int, updateRatio float64) float64 {
	hop := m.HopNs
	active := float64(t)
	if active > float64(m.HWThreads) {
		active = float64(m.HWThreads)
	}
	// Coherence pressure: update traffic invalidates traversal caches.
	hop *= 1 + m.InvalidationFactor*updateRatio*active/float64(m.HWThreads)
	// Second socket in play.
	if m.SocketCores > 0 && t > m.SocketCores {
		frac := math.Min(1, float64(t-m.SocketCores)/float64(m.SocketCores))
		hop *= 1 + m.CrossSocket*frac
	}
	// SMT sharing once threads exceed physical cores.
	if t > m.Cores {
		frac := math.Min(1, float64(t-m.Cores)/float64(m.Cores))
		hop *= 1 + m.SMTPenalty*frac
	}
	return hop
}

// Run simulates the cell.
func Run(cfg Config) Result {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 20000
	}
	if cfg.Size <= 0 {
		cfg.Size = 1024
	}
	m := cfg.Machine
	st := cfg.Structure
	t := cfg.Threads
	rng := xrand.New(cfg.Seed + 0x5EED)

	hop := m.effectiveHop(t, cfg.UpdateRatio)
	parseNs := st.OverheadNs + st.Hops(cfg.Size)*hop*st.TraversalFactor
	writeNs := st.WriteNs + 2*hop*st.Locks // lock-word transfers
	readNs := parseNs
	updateNs := parseNs + writeNs

	// Self-consistent write-phase fraction (Equation 2 with the simulated
	// durations).
	fu := birthday.FUpdate(cfg.UpdateRatio, updateNs, readNs)
	fw := fu * writeNs / updateNs
	if st.SerializedUpdates {
		// Hotspot structures: every operation is an update on one lock.
		fw = writeNs / updateNs
	}

	// Per-update conflict probability: some other thread is in a
	// conflicting write phase. Expected concurrent writers among the
	// other t-1 threads is (t-1)*fw; sample k ~ binomial via normal-ish
	// approximation per op is too slow — use the closed form instead.
	var pConf float64
	if cfg.ElideAttempts > 0 && st.BTSX != nil {
		pConf = birthday.PConflict(t, fw, func(k int) float64 { return st.BTSX(k, cfg.Size, t) })
	} else {
		pConf = birthday.PConflict(t, fw, func(k int) float64 { return st.B(k, cfg.Size) })
	}
	if cfg.SumP2 > 0 {
		// Non-uniform workloads: blend toward the Poisson term.
		pNU := birthday.PConflict(t, fw, func(k int) float64 { return birthday.BNonUniform(k, cfg.SumP2) })
		if pNU > pConf {
			pConf = pNU
		}
	}
	if st.SerializedUpdates && t > 1 {
		pConf = 1 // hotspot: concurrent updates always collide
	}

	// Multiprogramming: probability a critical section is interrupted and
	// the off-CPU time a lock holder imposes on waiters.
	multi := cfg.Multiprogram || t > m.HWThreads
	runnable := 1.0
	pPreemptInCS := 0.0
	pHeldBySwapped := 0.0
	if multi {
		over := float64(t) / float64(m.HWThreads)
		if over < 1 {
			over = 1
		}
		runnable = 1 / over
		pPreemptInCS = writeNs / m.QuantumNs
		// Lock-holder preemption (lock mode): the probability that the
		// window my update needs is currently held by a swapped-out
		// thread — (t-1) peers, each in a write phase fw of the time,
		// off-CPU (1-runnable) of the time, hitting my st.Locks/size
		// neighbourhood.
		pHeldBySwapped = float64(t-1) * fw * (1 - runnable) * st.Locks / float64(cfg.Size)
		if pHeldBySwapped > 1 {
			pHeldBySwapped = 1
		}
	}

	perThread := make([]float64, t)
	var totalWaitNs, totalBusyNs float64
	var ops, restartedOps, restarted3Ops, fallbacks, csCount, attempts, aborts float64

	opsPerThread := cfg.Ops
	for w := 0; w < t; w++ {
		var busy, waiting float64
		for i := 0; i < opsPerThread; i++ {
			isUpdate := rng.Bool(cfg.UpdateRatio) || st.SerializedUpdates
			if !isUpdate {
				busy += readNs
				ops++
				continue
			}
			// Update path.
			restarts := 0
			opNs := parseNs
			if cfg.ElideAttempts > 0 {
				csCount++
				committed := false
				for a := 0; a < cfg.ElideAttempts; a++ {
					attempts++
					pAbort := pConf + pPreemptInCS
					if !rng.Bool(pAbort) {
						committed = true
						opNs += writeNs
						break
					}
					aborts++
					opNs += writeNs * 0.6 // wasted attempt
				}
				if !committed {
					fallbacks++
					opNs += writeNs // pessimistic completion
				}
			} else {
				// Conflicts: waits and/or restarts. A conflicting writer
				// blocks us for part of its remaining write phase.
				for rng.Bool(pConf) && restarts < 64 {
					if st.Waits {
						w := writeNs * (0.1 + 0.8*rng.Float64())
						waiting += w
						opNs += w
					}
					if !st.Restarts {
						break
					}
					restarts++
					opNs += parseNs // redo the parse phase
				}
				if rng.Bool(pHeldBySwapped) {
					// Lock-holder preemption. The full swap period is not
					// charged: the OS runs other work meanwhile and wall
					// clock is already stretched by 1/runnable, so the
					// charge models only the extra serialization a waiter
					// experiences (calibrated against Table 3's measured
					// ratios; multi-lock updates convoy harder).
					w := m.QuantumNs * 0.003 * st.Locks * (0.5 + rng.Float64())
					if st.Waits {
						waiting += w
					} else {
						// Trylock designs burn the time as a restart
						// storm instead of blocking.
						restarts += 2
					}
					opNs += w
				}
				opNs += writeNs
				if st.SerializedUpdates && t > 1 {
					// Steady-state queueing on the hotspot: each op waits
					// for roughly the (t-1) other critical sections times
					// utilization.
					w := writeNs * float64(t-1) * rng.Float64()
					waiting += w
					opNs += w
				}
			}
			busy += opNs
			ops++
			if restarts >= 1 {
				restartedOps++
			}
			if restarts > 3 {
				restarted3Ops++
			}
		}
		// Multiprogramming stretches wall-clock by the runnable fraction.
		wall := busy / runnable
		perThread[w] = float64(opsPerThread) / (wall / 1e9)
		totalBusyNs += busy
		totalWaitNs += waiting
	}

	res := Result{PerThread: perThread}
	var sum, sum2 float64
	for _, p := range perThread {
		sum += p
		sum2 += p * p
	}
	mean := sum / float64(t)
	res.ThroughputOpsPerSec = sum
	res.PerThreadStddev = math.Sqrt(math.Max(0, sum2/float64(t)-mean*mean))
	if totalBusyNs > 0 {
		res.WaitFraction = totalWaitNs / totalBusyNs
	}
	if ops > 0 {
		res.RestartedFrac = restartedOps / ops
		res.RestartedFrac3 = restarted3Ops / ops
	}
	if csCount > 0 {
		res.FallbackFrac = fallbacks / csCount
	}
	if attempts > 0 {
		res.AbortFrac = aborts / attempts
	}
	return res
}
