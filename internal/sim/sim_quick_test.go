package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSimInvariantsProperty: for arbitrary (bounded) configurations the
// simulator must produce finite, bounded metrics.
func TestSimInvariantsProperty(t *testing.T) {
	models := []Structure{ListModel(), SkipListModel(), HashModel(), BSTModel(), QueueModel()}
	prop := func(thrRaw, sizeRaw uint8, uRaw uint16, modelIdx uint8, elideRaw uint8, multi bool) bool {
		cfg := Config{
			Machine:       PaperXeon(),
			Structure:     models[int(modelIdx)%len(models)],
			Threads:       1 + int(thrRaw)%64,
			Size:          8 + int(sizeRaw)*32,
			UpdateRatio:   float64(uRaw%1001) / 1000,
			Ops:           300,
			ElideAttempts: int(elideRaw) % 8,
			Multiprogram:  multi,
			Seed:          uint64(thrRaw)<<8 | uint64(sizeRaw),
		}
		r := Run(cfg)
		if math.IsNaN(r.ThroughputOpsPerSec) || math.IsInf(r.ThroughputOpsPerSec, 0) || r.ThroughputOpsPerSec <= 0 {
			return false
		}
		for _, f := range []float64{r.WaitFraction, r.RestartedFrac, r.RestartedFrac3, r.FallbackFrac, r.AbortFrac} {
			if math.IsNaN(f) || f < 0 || f > 1 {
				return false
			}
		}
		if r.RestartedFrac3 > r.RestartedFrac {
			return false
		}
		if len(r.PerThread) != cfg.Threads {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSimThroughputDecreasesWithSize: larger structures mean longer
// traversals for every pointer-chasing model.
func TestSimThroughputDecreasesWithSize(t *testing.T) {
	for _, st := range []Structure{ListModel(), SkipListModel(), BSTModel()} {
		prev := math.Inf(1)
		for _, size := range []int{128, 512, 2048, 8192} {
			r := Run(Config{Machine: PaperXeon(), Structure: st, Threads: 8, Size: size, UpdateRatio: 0.1, Ops: 2000, Seed: 2})
			if r.ThroughputOpsPerSec >= prev {
				t.Fatalf("%s: throughput grew with size at %d", st.Name, size)
			}
			prev = r.ThroughputOpsPerSec
		}
	}
}

// TestSimUpdatesReduceThroughput: higher update ratios cost throughput.
func TestSimUpdatesReduceThroughput(t *testing.T) {
	for _, st := range []Structure{ListModel(), HashModel()} {
		lo := Run(Config{Machine: PaperXeon(), Structure: st, Threads: 20, Size: 2048, UpdateRatio: 0.01, Ops: 3000, Seed: 3})
		hi := Run(Config{Machine: PaperXeon(), Structure: st, Threads: 20, Size: 2048, UpdateRatio: 0.5, Ops: 3000, Seed: 3})
		if hi.ThroughputOpsPerSec >= lo.ThroughputOpsPerSec {
			t.Fatalf("%s: 50%% updates not slower than 1%%", st.Name)
		}
	}
}

// TestSimElisionNeverWaits: with elision enabled no waiting is recorded
// (aborted speculation retries instead).
func TestSimElisionNeverWaits(t *testing.T) {
	r := Run(Config{Machine: PaperHaswell(), Structure: HashModel(), Threads: 32, Size: 64,
		UpdateRatio: 1, Ops: 3000, ElideAttempts: 5, Multiprogram: true, Seed: 4})
	if r.WaitFraction != 0 {
		t.Fatalf("elided run recorded waiting: %v", r.WaitFraction)
	}
	if r.AbortFrac == 0 {
		t.Fatal("contended elided run recorded zero aborts")
	}
}

// TestSimFallbackMonotoneInAttempts: more speculation budget, fewer
// fallbacks.
func TestSimFallbackMonotoneInAttempts(t *testing.T) {
	prev := 1.1
	for _, attempts := range []int{1, 2, 5, 10} {
		r := Run(Config{Machine: PaperHaswell(), Structure: SkipListModel(), Threads: 32, Size: 256,
			UpdateRatio: 1, Ops: 5000, ElideAttempts: attempts, Multiprogram: true, Seed: 5})
		if r.FallbackFrac > prev+0.02 {
			t.Fatalf("fallback grew with attempts=%d: %v > %v", attempts, r.FallbackFrac, prev)
		}
		prev = r.FallbackFrac
	}
}

// TestSimMultiprogrammingHurtsLockMode: with quanta enabled, lock-mode
// throughput drops relative to the same workload without multiprogramming
// (per-wall-clock).
func TestSimMultiprogrammingHurtsLockMode(t *testing.T) {
	base := Run(Config{Machine: PaperHaswell(), Structure: HashModel(), Threads: 8, Size: 1024,
		UpdateRatio: 0.5, Ops: 4000, Seed: 6})
	multi := Run(Config{Machine: PaperHaswell(), Structure: HashModel(), Threads: 32, Size: 1024,
		UpdateRatio: 0.5, Ops: 4000, Multiprogram: true, Seed: 6})
	perThreadBase := base.ThroughputOpsPerSec / 8
	perThreadMulti := multi.ThroughputOpsPerSec / 32
	if perThreadMulti >= perThreadBase {
		t.Fatalf("multiprogramming did not reduce per-thread throughput: %v >= %v", perThreadMulti, perThreadBase)
	}
}
