package sim

import (
	"testing"
)

func cell(st Structure, threads, size int, u float64) Config {
	return Config{
		Machine: PaperXeon(), Structure: st, Threads: threads,
		Size: size, UpdateRatio: u, Ops: 4000, Seed: 7,
	}
}

func TestThroughputScalesWithThreads(t *testing.T) {
	// Figure 3's shape: more threads => more aggregate throughput for
	// every featured structure (no collapse).
	for _, st := range []Structure{ListModel(), SkipListModel(), HashModel(), BSTModel()} {
		t1 := Run(cell(st, 1, 2048, 0.1)).ThroughputOpsPerSec
		t20 := Run(cell(st, 20, 2048, 0.1)).ThroughputOpsPerSec
		t40 := Run(cell(st, 40, 2048, 0.1)).ThroughputOpsPerSec
		if t20 < 5*t1 {
			t.Fatalf("%s: 20 threads only %.1fx of 1 thread", st.Name, t20/t1)
		}
		if t40 < t20 {
			t.Fatalf("%s: throughput dropped from 20 to 40 threads (%.0f -> %.0f)", st.Name, t20, t40)
		}
	}
}

func TestSocketKneeReducesSlope(t *testing.T) {
	// Scalability slope within one socket exceeds the cross-socket slope.
	st := HashModel()
	t1 := Run(cell(st, 1, 2048, 0.1)).ThroughputOpsPerSec
	t10 := Run(cell(st, 10, 2048, 0.1)).ThroughputOpsPerSec
	t20 := Run(cell(st, 20, 2048, 0.1)).ThroughputOpsPerSec
	slopeIn := (t10 - t1) / 9
	slopeOut := (t20 - t10) / 10
	if slopeOut >= slopeIn {
		t.Fatalf("no knee at the socket boundary: slope %.0f -> %.0f", slopeIn, slopeOut)
	}
}

func TestWaitFreeHalfOfBlocking(t *testing.T) {
	// Figure 1: wait-free list throughput ~50% of blocking; lock-free is
	// comparable to blocking.
	blocking := Run(cell(ListModel(), 20, 1024, 0.1)).ThroughputOpsPerSec
	lockfree := Run(cell(HarrisListModel(), 20, 1024, 0.1)).ThroughputOpsPerSec
	waitfree := Run(cell(WaitFreeListModel(), 20, 1024, 0.1)).ThroughputOpsPerSec
	ratio := waitfree / blocking
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("wait-free/blocking = %.2f, want ~0.5", ratio)
	}
	if lf := lockfree / blocking; lf < 0.8 || lf > 1.2 {
		t.Fatalf("lock-free/blocking = %.2f, want ~1.0", lf)
	}
}

func TestStructureThroughputOrdering(t *testing.T) {
	// Figure 3 rows: hash >> bst/skiplist >> list for equal size.
	h := Run(cell(HashModel(), 20, 2048, 0.1)).ThroughputOpsPerSec
	b := Run(cell(BSTModel(), 20, 2048, 0.1)).ThroughputOpsPerSec
	s := Run(cell(SkipListModel(), 20, 2048, 0.1)).ThroughputOpsPerSec
	l := Run(cell(ListModel(), 20, 2048, 0.1)).ThroughputOpsPerSec
	if !(h > b && b >= s/2 && s > l && h > 20*l) {
		t.Fatalf("ordering violated: hash %.0f bst %.0f skip %.0f list %.0f", h, b, s, l)
	}
}

func TestWaitFractionTinyOnPaperWorkloads(t *testing.T) {
	// Figure 5: waiting under 2% everywhere on the standard grid.
	for _, st := range []Structure{ListModel(), SkipListModel(), HashModel()} {
		for _, size := range []int{512, 2048, 8192} {
			for _, u := range []float64{0.01, 0.1, 0.5} {
				r := Run(cell(st, 20, size, u))
				if r.WaitFraction > 0.02 {
					t.Fatalf("%s size=%d u=%.2f: wait fraction %.4f > 2%%", st.Name, size, u, r.WaitFraction)
				}
			}
		}
	}
}

func TestRestartFracBelowOnePercent(t *testing.T) {
	// Figure 6: restarts well below 1% on the standard grid.
	for _, st := range []Structure{ListModel(), SkipListModel(), BSTModel()} {
		r := Run(cell(st, 20, 2048, 0.1))
		if r.RestartedFrac > 0.01 {
			t.Fatalf("%s: restart fraction %.4f > 1%%", st.Name, r.RestartedFrac)
		}
	}
}

func TestHighContentionGrowsMetrics(t *testing.T) {
	// Figure 8: metrics decrease steeply with size at 40 threads / 25%
	// updates; tiny structures show non-negligible delays.
	prevWait := 2.0
	for _, size := range []int{16, 64, 256, 512} {
		r := Run(Config{Machine: PaperXeon(), Structure: ListModel(), Threads: 40, Size: size, UpdateRatio: 0.25, Ops: 4000, Seed: 3})
		if r.WaitFraction > prevWait+0.02 {
			t.Fatalf("wait fraction grew with size at %d: %.4f > %.4f", size, r.WaitFraction, prevWait)
		}
		prevWait = r.WaitFraction
	}
	small := Run(Config{Machine: PaperXeon(), Structure: ListModel(), Threads: 40, Size: 16, UpdateRatio: 0.25, Ops: 4000, Seed: 3})
	big := Run(Config{Machine: PaperXeon(), Structure: ListModel(), Threads: 40, Size: 512, UpdateRatio: 0.25, Ops: 4000, Seed: 3})
	if small.WaitFraction < 5*big.WaitFraction {
		t.Fatalf("contention not concentrated on small structures: %v vs %v", small.WaitFraction, big.WaitFraction)
	}
}

func TestQueueStackWaitsDominate(t *testing.T) {
	// Figure 10: hotspot structures spend most of their time waiting as
	// threads grow.
	q := Run(Config{Machine: PaperXeon(), Structure: QueueModel(), Threads: 20, Size: 1024, UpdateRatio: 1, Ops: 2000, Seed: 1})
	if q.WaitFraction < 0.5 {
		t.Fatalf("queue wait fraction %.3f, want > 0.5 (Section 7)", q.WaitFraction)
	}
	few := Run(Config{Machine: PaperXeon(), Structure: StackModel(), Threads: 2, Size: 1024, UpdateRatio: 1, Ops: 2000, Seed: 1})
	many := Run(Config{Machine: PaperXeon(), Structure: StackModel(), Threads: 20, Size: 1024, UpdateRatio: 1, Ops: 2000, Seed: 1})
	if many.WaitFraction <= few.WaitFraction {
		t.Fatal("stack waiting does not grow with threads")
	}
}

func TestTSXFallbackShape(t *testing.T) {
	// Table 2: fallback fractions are small (<< 10%), and the skip list's
	// multi-lock updates fall back more than the hash table's single-lock
	// updates at the same workload.
	mk := func(st Structure, u float64) Result {
		return Run(Config{
			Machine: PaperHaswell(), Structure: st, Threads: 32, Size: 1024,
			UpdateRatio: u, Ops: 6000, ElideAttempts: 5, Multiprogram: true, Seed: 11,
		})
	}
	sl := mk(SkipListModel(), 0.2)
	ht := mk(HashModel(), 0.2)
	if sl.FallbackFrac <= ht.FallbackFrac {
		t.Fatalf("skiplist fallback %.5f not above hash %.5f", sl.FallbackFrac, ht.FallbackFrac)
	}
	if sl.FallbackFrac > 0.1 {
		t.Fatalf("skiplist fallback %.5f unreasonably high", sl.FallbackFrac)
	}
}

func TestTSXImprovesMultiprogrammedThroughput(t *testing.T) {
	// Table 3: under multiprogramming, elided versions beat lock versions,
	// increasingly so with update ratio.
	mk := func(u float64, elide int) float64 {
		return Run(Config{
			Machine: PaperHaswell(), Structure: ListModel(), Threads: 32, Size: 1024,
			UpdateRatio: u, Ops: 6000, ElideAttempts: elide, Multiprogram: true, Seed: 13,
		}).ThroughputOpsPerSec
	}
	r20 := mk(0.2, 5) / mk(0.2, 0)
	r100 := mk(1.0, 5) / mk(1.0, 0)
	if r20 < 1.0 {
		t.Fatalf("TSX ratio at 20%% updates = %.2f, want > 1", r20)
	}
	if r100 < r20 {
		t.Fatalf("TSX benefit did not grow with update ratio: %.2f -> %.2f", r20, r100)
	}
}

func TestZipfRaisesConflicts(t *testing.T) {
	uni := Run(cell(ListModel(), 20, 2048, 0.1))
	cfg := cell(ListModel(), 20, 2048, 0.1)
	cfg.SumP2 = 0.004 // Zipf s=0.8 over ~4096 keys has much higher mass than 1/4096
	zipf := Run(cfg)
	if zipf.WaitFraction+zipf.RestartedFrac < uni.WaitFraction+uni.RestartedFrac {
		t.Fatal("Zipf workload did not raise conflict metrics")
	}
}

func TestModelFor(t *testing.T) {
	for _, k := range []string{"list", "list/lazy", "list/harris", "list/waitfree", "skiplist", "hashtable", "bst", "queue", "stack"} {
		if _, ok := ModelFor(k); !ok {
			t.Fatalf("ModelFor(%q) missing", k)
		}
	}
	if _, ok := ModelFor("nope"); ok {
		t.Fatal("ModelFor accepted junk")
	}
}

func TestDefaults(t *testing.T) {
	r := Run(Config{Machine: PaperXeon(), Structure: HashModel()})
	if r.ThroughputOpsPerSec <= 0 {
		t.Fatal("defaulted run produced no throughput")
	}
}
