// Batched (core.Batcher) paths for the skip lists: sorted point
// application. A skip-list point search is already O(log n), so a
// resumed level-0 walk between sorted keys would trade a logarithmic
// descent for a linear gap walk — a loss on sparse batches. The batch
// win here is the ascending application order: consecutive sorted keys
// descend through largely the same upper-level towers, so the sort
// buys branch and cache locality without touching the per-variant
// synchronization. Each Multi* opens one epoch bracket for the whole
// batch (brackets nest), amortizing the per-op epoch announcement.
package skiplist

import "csds/internal/core"

// MultiGet implements core.Batcher by sorted point lookups.
func (s *Herlihy) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiGet(c, s, keys, f)
}

// MultiPut implements core.Batcher by sorted point inserts.
func (s *Herlihy) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiPut(c, s, pairs, f)
}

// MultiRemove implements core.Batcher by sorted point removes.
func (s *Herlihy) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiRemove(c, s, keys, f)
}

// MultiGet implements core.Batcher by sorted point lookups.
func (s *LockFree) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiGet(c, s, keys, f)
}

// MultiPut implements core.Batcher by sorted point inserts.
func (s *LockFree) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiPut(c, s, pairs, f)
}

// MultiRemove implements core.Batcher by sorted point removes.
func (s *LockFree) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiRemove(c, s, keys, f)
}

// MultiGet implements core.Batcher by sorted point lookups.
func (s *Pugh) MultiGet(c *core.Ctx, keys []core.Key, f func(i int, v core.Value, ok bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiGet(c, s, keys, f)
}

// MultiPut implements core.Batcher by sorted point inserts.
func (s *Pugh) MultiPut(c *core.Ctx, pairs []core.KV, f func(i int, inserted bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiPut(c, s, pairs, f)
}

// MultiRemove implements core.Batcher by sorted point removes.
func (s *Pugh) MultiRemove(c *core.Ctx, keys []core.Key, f func(i int, removed bool)) {
	c.EpochEnter()
	defer c.EpochExit()
	core.SortedMultiRemove(c, s, keys, f)
}
