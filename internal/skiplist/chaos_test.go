package skiplist

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The chaos battery (settest.RunChaos): seeded fault injection under the
// full invariant set — see internal/settest/chaostest.go.

func TestHerlihyChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewHerlihy(o) })
}

func TestPughChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewPugh(o) })
}

func TestLockFreeChaos(t *testing.T) {
	settest.RunChaos(t, func(o core.Options) core.Set { return NewLockFree(o) })
}
