// Package skiplist implements the skip-list set algorithms of the paper's
// Table 1: the featured Herlihy–Lev–Luchangco–Shavit optimistic skip list
// and a Pugh-style per-level-lock skip list.
package skiplist

import (
	"math/bits"
	"runtime"
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/htm"
	"csds/internal/locks"
	"csds/internal/xrand"
)

// maxMaxLevel caps tower height; 2^32 expected elements is far beyond any
// workload here.
const maxMaxLevel = 32

// levelForSize picks a sensible tower bound for an expected size.
func levelForSize(n int) int {
	if n < 4 {
		n = 4
	}
	l := bits.Len(uint(n)) // ~log2(n)+1
	if l < 4 {
		l = 4
	}
	if l > maxMaxLevel {
		l = maxMaxLevel
	}
	return l
}

// randomLevel draws a geometric(1/2) tower height in [1, max].
func randomLevel(rng *xrand.Rng, max int) int {
	// Count trailing ones of a random word: P(level = l) = 2^-l.
	lvl := bits.TrailingZeros64(rng.Next()) + 1
	if lvl > max {
		lvl = max
	}
	return lvl
}

// hNode is an optimistic skip-list node. fullyLinked flips once the tower
// is completely spliced in; marked is the logical-deletion flag.
type hNode struct {
	key         core.Key
	val         core.Value
	next        []atomic.Pointer[hNode]
	marked      atomic.Bool
	fullyLinked atomic.Bool
	lock        locks.TAS
	topLevel    int // index of highest valid level in next
}

func newHNode(k core.Key, v core.Value, height int) *hNode {
	return &hNode{key: k, val: v, next: make([]atomic.Pointer[hNode], height), topLevel: height - 1}
}

// Herlihy is the optimistic lazy skip list (Herlihy, Lev, Luchangco,
// Shavit, SIROCCO 2007): wait-free contains; updates lock only the
// predecessor towers of the modified node and validate optimistically.
// This is the paper's featured skip list.
type Herlihy struct {
	head     *hNode
	tail     *hNode
	maxLevel int
	region   htm.Region
	guard    core.ScanGuard // validates optimistic range scans
}

// NewHerlihy builds an empty skip list sized for o.ExpectedSize.
func NewHerlihy(o core.Options) *Herlihy {
	ml := o.MaxLevel
	if ml <= 0 {
		ml = levelForSize(o.ExpectedSize)
	}
	if ml > maxMaxLevel {
		ml = maxMaxLevel
	}
	tail := newHNode(core.KeyMax, 0, ml)
	head := newHNode(core.KeyMin, 0, ml)
	for i := 0; i < ml; i++ {
		head.next[i].Store(tail)
	}
	tail.fullyLinked.Store(true)
	head.fullyLinked.Store(true)
	return &Herlihy{head: head, tail: tail, maxLevel: ml, region: o.Region()}
}

func init() {
	core.Register(core.Info{
		Name: "skiplist/herlihy", Kind: "skiplist", Progress: "blocking", Featured: true,
		New:  func(o core.Options) core.Set { return NewHerlihy(o) },
		Desc: "optimistic lazy skip list (Herlihy et al. 2007)",
	})
}

// find fills preds/succs for key k and returns the highest level at which
// k was found, or -1. Pure reading: the parse phase.
func (s *Herlihy) find(k core.Key, preds, succs []*hNode) int {
	found := -1
	pred := s.head
	for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr.key < k {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		if found == -1 && curr.key == k {
			found = lvl
		}
		preds[lvl] = pred
		succs[lvl] = curr
	}
	return found
}

// Get implements core.Set: no stores, no restarts.
func (s *Herlihy) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	pred := s.head
	var curr *hNode
	for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
		curr = pred.next[lvl].Load()
		for curr.key < k {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		if curr.key == k {
			if curr.fullyLinked.Load() && !curr.marked.Load() {
				return curr.val, true
			}
			return 0, false
		}
	}
	return 0, false
}

// lockSet tracks the distinct predecessor locks an update holds.
type lockSet struct {
	nodes [maxMaxLevel + 1]*hNode
	n     int
}

func (ls *lockSet) acquire(c *core.Ctx, nd *hNode) {
	if ls.n > 0 && ls.nodes[ls.n-1] == nd {
		return // same pred as previous level: already held
	}
	nd.lock.Acquire(c.Stat())
	ls.nodes[ls.n] = nd
	ls.n++
}

func (ls *lockSet) releaseAll() {
	for i := ls.n - 1; i >= 0; i-- {
		ls.nodes[i].lock.Release()
		ls.nodes[i] = nil
	}
	ls.n = 0
}

// Put implements core.Set.
func (s *Herlihy) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	if s.region.Attempts > 0 {
		return s.putElided(c, k, v)
	}
	var preds, succs [maxMaxLevel]*hNode
	topLevel := randomLevel(c.Rng, s.maxLevel) - 1
	restarts := 0
	for {
		if found := s.find(k, preds[:s.maxLevel], succs[:s.maxLevel]); found != -1 {
			n := succs[found]
			if !n.marked.Load() {
				// Wait for a concurrent inserter to finish splicing; the
				// key is (about to be) present.
				for !n.fullyLinked.Load() {
					runtime.Gosched()
				}
				c.RecordRestarts(restarts)
				return false
			}
			// Marked: a removal is in progress; retry until it unlinks.
			restarts++
			continue
		}
		var ls lockSet
		valid := true
		for lvl := 0; lvl <= topLevel; lvl++ {
			ls.acquire(c, preds[lvl])
			if preds[lvl].marked.Load() || succs[lvl].marked.Load() || preds[lvl].next[lvl].Load() != succs[lvl] {
				valid = false
				break
			}
		}
		if !valid {
			ls.releaseAll()
			restarts++
			continue
		}
		n := newHNodePooled(c, k, v, topLevel+1)
		for lvl := 0; lvl <= topLevel; lvl++ {
			n.next[lvl].Store(succs[lvl])
		}
		c.InCS()
		s.guard.BeginWrite(c.Stat())
		for lvl := 0; lvl <= topLevel; lvl++ {
			preds[lvl].next[lvl].Store(n)
		}
		n.fullyLinked.Store(true)
		s.guard.EndWrite()
		ls.releaseAll()
		c.RecordRestarts(restarts)
		return true
	}
}

func (s *Herlihy) putElided(c *core.Ctx, k core.Key, v core.Value) bool {
	var preds, succs [maxMaxLevel]*hNode
	topLevel := randomLevel(c.Rng, s.maxLevel) - 1
	restarts := 0
	for {
		if found := s.find(k, preds[:s.maxLevel], succs[:s.maxLevel]); found != -1 {
			n := succs[found]
			if !n.marked.Load() {
				for !n.fullyLinked.Load() {
					runtime.Gosched()
				}
				c.RecordRestarts(restarts)
				return false
			}
			restarts++
			continue
		}
		n := newHNodePooled(c, k, v, topLevel+1)
		st := s.region.Run(c.Stat(), ctxDoom(c), func(a *htm.Acq) htm.Status {
			var last *hNode
			for lvl := 0; lvl <= topLevel; lvl++ {
				if preds[lvl] != last {
					if !a.Lock(&preds[lvl].lock) {
						return a.AbortStatus()
					}
					last = preds[lvl]
				}
				if preds[lvl].marked.Load() || succs[lvl].marked.Load() || preds[lvl].next[lvl].Load() != succs[lvl] {
					return htm.ValidateFail
				}
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			for lvl := 0; lvl <= topLevel; lvl++ {
				n.next[lvl].Store(succs[lvl])
			}
			s.guard.BeginWrite(c.Stat())
			for lvl := 0; lvl <= topLevel; lvl++ {
				preds[lvl].next[lvl].Store(n)
			}
			n.fullyLinked.Store(true)
			s.guard.EndWrite()
			return htm.Committed
		})
		if st == htm.Committed {
			c.RecordRestarts(restarts)
			return true
		}
		restarts++
	}
}

// okToDelete: fully linked, found at its own top level, unmarked.
func okToDelete(n *hNode, foundLvl int) bool {
	return n.fullyLinked.Load() && n.topLevel == foundLvl && !n.marked.Load()
}

// Remove implements core.Set.
func (s *Herlihy) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	if s.region.Attempts > 0 {
		return s.removeElided(c, k)
	}
	var preds, succs [maxMaxLevel]*hNode
	var victim *hNode
	isMarked := false
	topLevel := -1
	restarts := 0
	for {
		found := s.find(k, preds[:s.maxLevel], succs[:s.maxLevel])
		if found != -1 {
			victim = succs[found]
		}
		if isMarked || (found != -1 && okToDelete(victim, found)) {
			if !isMarked {
				topLevel = victim.topLevel
				victim.lock.Acquire(c.Stat())
				if victim.marked.Load() {
					victim.lock.Release()
					c.RecordRestarts(restarts)
					return false
				}
				s.guard.BeginWrite(c.Stat())
				victim.marked.Store(true)
				s.guard.EndWrite()
				isMarked = true
			}
			var ls lockSet
			valid := true
			for lvl := 0; lvl <= topLevel; lvl++ {
				ls.acquire(c, preds[lvl])
				if preds[lvl].marked.Load() || preds[lvl].next[lvl].Load() != victim {
					valid = false
					break
				}
			}
			if !valid {
				ls.releaseAll()
				restarts++
				continue
			}
			c.InCS()
			for lvl := topLevel; lvl >= 0; lvl-- {
				preds[lvl].next[lvl].Store(victim.next[lvl].Load())
			}
			victim.lock.Release()
			ls.releaseAll()
			c.Retire(victim, reclaimHNode)
			c.RecordRestarts(restarts)
			return true
		}
		c.RecordRestarts(restarts)
		return false
	}
}

func (s *Herlihy) removeElided(c *core.Ctx, k core.Key) bool {
	var preds, succs [maxMaxLevel]*hNode
	restarts := 0
	for {
		found := s.find(k, preds[:s.maxLevel], succs[:s.maxLevel])
		if found == -1 {
			c.RecordRestarts(restarts)
			return false
		}
		victim := succs[found]
		if !okToDelete(victim, found) {
			c.RecordRestarts(restarts)
			return false
		}
		topLevel := victim.topLevel
		var removed bool
		st := s.region.Run(c.Stat(), ctxDoom(c), func(a *htm.Acq) htm.Status {
			if !a.Lock(&victim.lock) {
				return a.AbortStatus()
			}
			if victim.marked.Load() {
				removed = false
				return htm.Committed
			}
			var last *hNode
			for lvl := 0; lvl <= topLevel; lvl++ {
				if preds[lvl] != last {
					if !a.Lock(&preds[lvl].lock) {
						return a.AbortStatus()
					}
					last = preds[lvl]
				}
				if preds[lvl].marked.Load() || preds[lvl].next[lvl].Load() != victim {
					return htm.ValidateFail
				}
			}
			if !a.Commit() {
				return a.AbortStatus()
			}
			s.guard.BeginWrite(c.Stat())
			victim.marked.Store(true)
			for lvl := topLevel; lvl >= 0; lvl-- {
				preds[lvl].next[lvl].Store(victim.next[lvl].Load())
			}
			s.guard.EndWrite()
			removed = true
			return htm.Committed
		})
		if st == htm.Committed {
			if removed {
				c.Retire(victim, reclaimHNode)
			}
			c.RecordRestarts(restarts)
			return removed
		}
		restarts++
	}
}

// Len implements core.Set (quiesced use): walks level 0.
func (s *Herlihy) Len() int {
	n := 0
	for curr := s.head.next[0].Load(); curr.key != core.KeyMax; curr = curr.next[0].Load() {
		if !curr.marked.Load() && curr.fullyLinked.Load() {
			n++
		}
	}
	return n
}

// Range implements core.Ranger: an in-order level-0 walk, quiesced-use
// like Len.
func (s *Herlihy) Range(f func(k core.Key, v core.Value) bool) {
	for curr := s.head.next[0].Load(); curr.key != core.KeyMax; curr = curr.next[0].Load() {
		if !curr.marked.Load() && curr.fullyLinked.Load() && !f(curr.key, curr.val) {
			return
		}
	}
}

// Scan implements core.Scanner: a read-only tower descent to the first
// in-range node, then an optimistic level-0 walk validated by the scan
// guard (see core.GuardedScan); atomic per call.
func (s *Herlihy) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &s.guard, func(emit func(k core.Key, v core.Value)) {
		pred := s.head
		for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
			curr := pred.next[lvl].Load()
			for curr.key < lo {
				pred = curr
				curr = pred.next[lvl].Load()
			}
		}
		for curr := pred.next[0].Load(); curr.key < hi; curr = curr.next[0].Load() {
			if !curr.marked.Load() && curr.fullyLinked.Load() {
				emit(curr.key, curr.val)
			}
		}
	}, f)
}

// CursorNext implements core.Cursor: the read-only tower descent lands
// on the token position in O(log n) — resuming a page costs what a point
// read costs, not a re-walk of the delivered prefix — then a bounded
// guard-validated level-0 walk collects one page (atomic, like Scan).
func (s *Herlihy) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &s.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		pred := s.head
		for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
			curr := pred.next[lvl].Load()
			for curr.key < pos {
				pred = curr
				curr = pred.next[lvl].Load()
			}
		}
		for curr := pred.next[0].Load(); curr.key < hi; curr = curr.next[0].Load() {
			if !curr.marked.Load() && curr.fullyLinked.Load() && !emit(curr.key, curr.val) {
				return
			}
		}
	}, f)
}

// ctxDoom extracts the HTM doom flag from a context (nil-tolerant).
func ctxDoom(c *core.Ctx) *htm.Doom {
	if c == nil {
		return nil
	}
	return c.Doom
}
