package skiplist

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/xrand"
)

// lfLink boxes (successor, mark) for one level of a lock-free skip-list
// node — the same AtomicMarkableReference idiom as the Harris list, since
// Go cannot tag pointer bits.
type lfLink struct {
	next   *lfNode
	marked bool
}

type lfNode struct {
	key      core.Key
	val      core.Value
	next     []atomic.Pointer[lfLink]
	topLevel int
}

func newLFNode(k core.Key, v core.Value, height int) *lfNode {
	return &lfNode{key: k, val: v, next: make([]atomic.Pointer[lfLink], height), topLevel: height - 1}
}

// LockFree is the lock-free skip list of Herlihy & Shavit ("The Art of
// Multiprocessor Programming", after Fraser's design): membership is
// decided by the bottom-level list, towers are spliced bottom-up with CAS
// and deleted top-down by marking every level. It is registered for the
// throughput comparisons alongside the blocking algorithms (the paper's
// remark 3: several lock-free algorithms match blocking performance).
type LockFree struct {
	head     *lfNode
	tail     *lfNode
	maxLevel int
	guard    core.ScanGuard // validates optimistic range scans
}

// NewLockFree builds an empty lock-free skip list sized for o.ExpectedSize.
func NewLockFree(o core.Options) *LockFree {
	ml := o.MaxLevel
	if ml <= 0 {
		ml = levelForSize(o.ExpectedSize)
	}
	if ml > maxMaxLevel {
		ml = maxMaxLevel
	}
	tail := newLFNode(core.KeyMax, 0, ml)
	head := newLFNode(core.KeyMin, 0, ml)
	for i := 0; i < ml; i++ {
		tail.next[i].Store(&lfLink{})
		head.next[i].Store(&lfLink{next: tail})
	}
	return &LockFree{head: head, tail: tail, maxLevel: ml}
}

func init() {
	core.Register(core.Info{
		Name: "skiplist/lockfree", Kind: "skiplist", Progress: "lock-free",
		New:  func(o core.Options) core.Set { return NewLockFree(o) },
		Desc: "lock-free skip list (Fraser / Herlihy–Shavit style)",
	})
}

// find locates the window for k on every level, snipping marked nodes.
// Returns whether k is present at the bottom level.
func (s *LockFree) find(c *core.Ctx, k core.Key, preds, succs []*lfNode) bool {
retry:
	for {
		pred := s.head
		for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
			predLink := pred.next[lvl].Load()
			curr := predLink.next
			for {
				currLink := curr.next[lvl].Load()
				for currLink.marked {
					snip := &lfLink{next: currLink.next}
					if !pred.next[lvl].CompareAndSwap(predLink, snip) {
						continue retry
					}
					if lvl == 0 {
						// nil callback: a same-key insert can hide a
						// structure-resident link to curr (see pool.go),
						// so lfNodes fall back to the GC.
						c.Retire(curr, nil)
					}
					predLink = snip
					curr = currLink.next
					currLink = curr.next[lvl].Load()
				}
				if curr.key < k {
					pred = curr
					predLink = currLink
					curr = currLink.next
					continue
				}
				break
			}
			preds[lvl] = pred
			succs[lvl] = curr
		}
		return succs[0].key == k
	}
}

// Get implements core.Set: wait-free traversal without helping.
func (s *LockFree) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	pred := s.head
	var curr *lfNode
	for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
		curr = pred.next[lvl].Load().next
		for {
			currLink := curr.next[lvl].Load()
			if currLink.marked {
				curr = currLink.next
				continue
			}
			if curr.key < k {
				pred = curr
				curr = currLink.next
				continue
			}
			break
		}
	}
	if curr.key == k {
		link := curr.next[0].Load()
		if !link.marked {
			return curr.val, true
		}
	}
	return 0, false
}

// Put implements core.Set.
func (s *LockFree) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	topLevel := randomLevelLF(c.Rng, s.maxLevel) - 1
	var pa, sa [maxMaxLevel]*lfNode
	preds, succs := pa[:s.maxLevel], sa[:s.maxLevel]
	restarts := 0
	for {
		if s.find(c, k, preds, succs) {
			c.RecordRestarts(restarts)
			return false
		}
		n := newLFNode(k, v, topLevel+1)
		for lvl := 0; lvl <= topLevel; lvl++ {
			n.next[lvl].Store(&lfLink{next: succs[lvl]})
		}
		// Bottom level decides membership.
		predLink := preds[0].next[0].Load()
		if predLink.next != succs[0] || predLink.marked {
			restarts++
			continue
		}
		s.guard.BeginWrite(c.Stat())
		linked := preds[0].next[0].CompareAndSwap(predLink, &lfLink{next: n})
		s.guard.EndWrite()
		if !linked {
			restarts++
			continue
		}
		// Splice the upper levels best-effort.
		for lvl := 1; lvl <= topLevel; lvl++ {
			for {
				nLink := n.next[lvl].Load()
				if nLink.marked {
					break // node already being deleted; stop splicing
				}
				succ := succs[lvl]
				if nLink.next != succ {
					if !n.next[lvl].CompareAndSwap(nLink, &lfLink{next: succ}) {
						continue
					}
				}
				predLink := preds[lvl].next[lvl].Load()
				if predLink.next == succ && !predLink.marked &&
					preds[lvl].next[lvl].CompareAndSwap(predLink, &lfLink{next: n}) {
					break
				}
				// Window moved: recompute and retry this level.
				s.find(c, k, preds, succs)
				if succs[0] != n {
					// Node got deleted meanwhile; abandon upper splicing.
					lvl = topLevel
					break
				}
			}
		}
		c.RecordRestarts(restarts)
		return true
	}
}

// Remove implements core.Set: mark from the top level down; the bottom
// mark is the linearization point.
func (s *LockFree) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	var pa, sa [maxMaxLevel]*lfNode
	preds, succs := pa[:s.maxLevel], sa[:s.maxLevel]
	restarts := 0
	if !s.find(c, k, preds, succs) {
		c.RecordRestarts(restarts)
		return false
	}
	victim := succs[0]
	// Mark upper levels (idempotent, helped by anyone).
	for lvl := victim.topLevel; lvl >= 1; lvl-- {
		for {
			link := victim.next[lvl].Load()
			if link.marked {
				break
			}
			if victim.next[lvl].CompareAndSwap(link, &lfLink{next: link.next, marked: true}) {
				break
			}
		}
	}
	// Bottom level: whoever marks it owns the removal.
	for {
		link := victim.next[0].Load()
		if link.marked {
			c.RecordRestarts(restarts)
			return false // someone else won
		}
		s.guard.BeginWrite(c.Stat())
		marked := victim.next[0].CompareAndSwap(link, &lfLink{next: link.next, marked: true})
		s.guard.EndWrite()
		if marked {
			// Physically clean up via find.
			s.find(c, k, preds, succs)
			c.RecordRestarts(restarts)
			return true
		}
		restarts++
	}
}

// Len implements core.Set (quiesced use).
func (s *LockFree) Len() int {
	n := 0
	for curr := s.head.next[0].Load().next; curr.key != core.KeyMax; {
		link := curr.next[0].Load()
		if !link.marked {
			n++
		}
		curr = link.next
	}
	return n
}

// Range implements core.Ranger: an in-order level-0 walk over unmarked
// nodes, quiesced-use like Len.
func (s *LockFree) Range(f func(k core.Key, v core.Value) bool) {
	for curr := s.head.next[0].Load().next; curr.key != core.KeyMax; {
		link := curr.next[0].Load()
		if !link.marked && !f(curr.key, curr.val) {
			return
		}
		curr = link.next
	}
}

// Scan implements core.Scanner: a non-helping descent to the first
// in-range node (skipping marked links, like Get), then an optimistic
// level-0 walk validated by the scan guard — only the bottom-level
// membership CASes open guard windows; upper-level splices and physical
// snips are invisible to the snapshot. Atomic per call.
func (s *LockFree) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &s.guard, func(emit func(k core.Key, v core.Value)) {
		pred := s.head
		var curr *lfNode
		for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
			curr = pred.next[lvl].Load().next
			for {
				currLink := curr.next[lvl].Load()
				if currLink.marked {
					curr = currLink.next
					continue
				}
				if curr.key < lo {
					pred = curr
					curr = currLink.next
					continue
				}
				break
			}
		}
		for curr.key < hi {
			link := curr.next[0].Load()
			if !link.marked {
				emit(curr.key, curr.val)
			}
			curr = link.next
		}
	}, f)
}

// CursorNext implements core.Cursor: the non-helping marked-skipping
// descent lands on the token position, then a bounded guard-validated
// level-0 walk collects one page (atomic, like Scan).
func (s *LockFree) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &s.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		pred := s.head
		var curr *lfNode
		for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
			curr = pred.next[lvl].Load().next
			for {
				currLink := curr.next[lvl].Load()
				if currLink.marked {
					curr = currLink.next
					continue
				}
				if curr.key < pos {
					pred = curr
					curr = currLink.next
					continue
				}
				break
			}
		}
		for curr.key < hi {
			link := curr.next[0].Load()
			if !link.marked && !emit(curr.key, curr.val) {
				return
			}
			curr = link.next
		}
	}, f)
}

// randomLevelLF mirrors randomLevel; separate name keeps the call sites
// greppable per algorithm.
func randomLevelLF(rng *xrand.Rng, max int) int { return randomLevel(rng, max) }
