package skiplist

import (
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
)

// The poisoning battery (settest.RunPoison): EBR on, reclaim callbacks
// poisoning and recycling every retired tower, concurrent readers
// asserting no traversal ever observes a poisoned or recycled mapping.

func TestHerlihyPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewHerlihy(o) })
}

func TestPughPoison(t *testing.T) {
	settest.RunPoison(t, func(o core.Options) core.Set { return NewPugh(o) })
}

func TestLockFreePoison(t *testing.T) {
	// The lock-free skip list retires with a nil callback (no pool; see
	// pool.go) — the battery still verifies its brackets and that the
	// domain drains fully.
	settest.RunPoison(t, func(o core.Options) core.Set { return NewLockFree(o) })
}
