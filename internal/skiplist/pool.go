// Typed free-lists and reclaim callbacks for the skip-list towers
// (DESIGN.md, "Pooling contract"). Reuse is tower-aware: a pooled node
// whose next slice is at least as tall as the requested height keeps its
// backing array (resliced down), so steady-state churn stops allocating
// towers altogether.
//
// Only the two lock-based skip lists pool. Their removes unlink the
// victim from every level (under locks, or under Pugh's per-level helping
// pass) before retiring it, so after the grace period no structure-
// resident pointer can reach the node. The lock-free skip list retires at
// the level-0 snip, but a concurrent same-key insert can publish an
// upper-level link to the marked victim and then hide it (equal keys stop
// the helping walk), leaving a structure-resident reference long after
// any bracket — so lfNode retirements carry a nil callback and fall to
// the GC, like the wait-free list (see DESIGN.md).
package skiplist

import (
	"sync/atomic"

	"csds/internal/core"
)

var (
	hNodePool core.Pool
	pNodePool core.Pool
)

func newHNodePooled(c *core.Ctx, k core.Key, v core.Value, height int) *hNode {
	if c.Pooled() {
		if n, _ := hNodePool.Get(c).(*hNode); n != nil {
			if cap(n.next) >= height {
				n.next = n.next[:height]
				for i := range n.next {
					n.next[i].Store(nil)
				}
			} else {
				n.next = make([]atomic.Pointer[hNode], height)
			}
			n.key, n.val, n.topLevel = k, v, height-1
			n.marked.Store(false)
			n.fullyLinked.Store(false)
			return n
		}
	}
	return newHNode(k, v, height)
}

func reclaimHNode(p any) {
	n := p.(*hNode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.marked.Store(true)
	for i := range n.next {
		n.next[i].Store(nil)
	}
	hNodePool.Put(n)
}

func newPNodePooled(c *core.Ctx, k core.Key, v core.Value, height int) *pNode {
	if c.Pooled() {
		if n, _ := pNodePool.Get(c).(*pNode); n != nil {
			if cap(n.next) >= height {
				n.next = n.next[:height]
				for i := range n.next {
					n.next[i].Store(nil)
				}
			} else {
				n.next = make([]atomic.Pointer[pNode], height)
			}
			n.key, n.val, n.topLevel = k, v, height-1
			n.marked.Store(false)
			return n
		}
	}
	return newPNode(k, v, height)
}

func reclaimPNode(p any) {
	n := p.(*pNode)
	n.key, n.val = core.PoisonKey, core.PoisonValue
	n.marked.Store(true)
	for i := range n.next {
		n.next[i].Store(nil)
	}
	pNodePool.Put(n)
}
