package skiplist

import (
	"sync/atomic"

	"csds/internal/core"
	"csds/internal/locks"
)

// pNode is a Pugh skip-list node.
type pNode struct {
	key      core.Key
	val      core.Value
	next     []atomic.Pointer[pNode]
	marked   atomic.Bool
	lock     locks.TAS
	topLevel int
}

func newPNode(k core.Key, v core.Value, height int) *pNode {
	return &pNode{key: k, val: v, next: make([]atomic.Pointer[pNode], height), topLevel: height - 1}
}

// Pugh is a per-level-lock skip list in the spirit of Pugh's "Concurrent
// Maintenance of Skip Lists" (1990): updates lock one predecessor at a
// time per level and *slide forward under the lock* instead of restarting
// the whole operation, so there are no full restarts in the common path.
//
// Simplification relative to Pugh's technical report (documented in
// DESIGN.md): removal marks the node under its own lock (membership is
// decided at that instant) and then unlinks its tower levels best-effort;
// any marked node a later update encounters behind a locked predecessor is
// helped out of that level. Tower levels of a removed node may therefore
// linger briefly, which affects neither correctness (navigation is by key,
// membership is level-0 presence plus the mark) nor the metrics the paper
// reports.
type Pugh struct {
	head     *pNode
	maxLevel int
	guard    core.ScanGuard // validates optimistic range scans
}

// NewPugh builds an empty Pugh skip list sized for o.ExpectedSize.
func NewPugh(o core.Options) *Pugh {
	ml := o.MaxLevel
	if ml <= 0 {
		ml = levelForSize(o.ExpectedSize)
	}
	if ml > maxMaxLevel {
		ml = maxMaxLevel
	}
	tail := newPNode(core.KeyMax, 0, ml)
	head := newPNode(core.KeyMin, 0, ml)
	for i := 0; i < ml; i++ {
		head.next[i].Store(tail)
	}
	return &Pugh{head: head, maxLevel: ml}
}

func init() {
	core.Register(core.Info{
		Name: "skiplist/pugh", Kind: "skiplist", Progress: "blocking",
		New:  func(o core.Options) core.Set { return NewPugh(o) },
		Desc: "per-level-lock skip list with forward repositioning (Pugh 1990 style)",
	})
}

// find fills preds with the last node whose key < k at every level.
func (s *Pugh) find(k core.Key, preds []*pNode) *pNode {
	pred := s.head
	for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr.key < k {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		preds[lvl] = pred
	}
	return preds[0].next[0].Load()
}

// Get implements core.Set.
func (s *Pugh) Get(c *core.Ctx, k core.Key) (core.Value, bool) {
	c.EpochEnter()
	defer c.EpochExit()
	pred := s.head
	for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
		curr := pred.next[lvl].Load()
		for curr.key < k {
			pred = curr
			curr = pred.next[lvl].Load()
		}
		if curr.key == k && !curr.marked.Load() {
			return curr.val, true
		}
	}
	return 0, false
}

// lockLevel locks the predecessor for key k at level lvl, sliding forward
// under the lock and unlinking any marked nodes it passes (helping).
// Returns the locked predecessor, whose successor at lvl has key >= k and
// is unmarked — or nil if the predecessor itself turned out to be marked
// (detached), in which case the caller must restart from the head: linking
// through a detached node would lose the update.
func (s *Pugh) lockLevel(c *core.Ctx, pred *pNode, k core.Key, lvl int) *pNode {
	pred.lock.Acquire(c.Stat())
	for {
		if pred.marked.Load() {
			pred.lock.Release()
			return nil
		}
		curr := pred.next[lvl].Load()
		if curr.marked.Load() && curr.key != core.KeyMax {
			// Help unlink a logically deleted node from this level.
			pred.next[lvl].Store(curr.next[lvl].Load())
			continue
		}
		if curr.key < k {
			// Slide forward hand-over-hand (ascending key order only, so
			// no deadlock is possible).
			curr.lock.Acquire(c.Stat())
			pred.lock.Release()
			pred = curr
			continue
		}
		return pred
	}
}

// lockLevelFrom retries lockLevel from the head until it sticks.
func (s *Pugh) lockLevelFrom(c *core.Ctx, start *pNode, k core.Key, lvl int, restarts *int) *pNode {
	for {
		if p := s.lockLevel(c, start, k, lvl); p != nil {
			return p
		}
		*restarts++
		start = s.head // head is never marked
	}
}

// Put implements core.Set.
func (s *Pugh) Put(c *core.Ctx, k core.Key, v core.Value) bool {
	c.EpochEnter()
	defer c.EpochExit()
	var pa [maxMaxLevel]*pNode
	preds := pa[:s.maxLevel]
	topLevel := randomLevel(c.Rng, s.maxLevel) - 1
	s.find(k, preds)
	restarts := 0

	// Level 0 decides membership.
	pred := s.lockLevelFrom(c, preds[0], k, 0, &restarts)
	curr := pred.next[0].Load()
	if curr.key == k {
		pred.lock.Release()
		c.RecordRestarts(restarts)
		return false
	}
	n := newPNodePooled(c, k, v, topLevel+1)
	n.next[0].Store(curr)
	c.InCS()
	s.guard.BeginWrite(c.Stat())
	pred.next[0].Store(n)
	s.guard.EndWrite()
	pred.lock.Release()

	// Upper levels are linked one at a time; abandon if the node got
	// removed in the meantime.
	for lvl := 1; lvl <= topLevel; lvl++ {
		if n.marked.Load() {
			break
		}
		p := s.lockLevelFrom(c, preds[lvl], k, lvl, &restarts)
		if n.marked.Load() {
			p.lock.Release()
			break
		}
		succ := p.next[lvl].Load()
		if succ == n {
			p.lock.Release()
			continue // already linked here (defensive; should not happen)
		}
		n.next[lvl].Store(succ)
		p.next[lvl].Store(n)
		p.lock.Release()
	}
	c.RecordRestarts(restarts)
	return true
}

// Remove implements core.Set.
func (s *Pugh) Remove(c *core.Ctx, k core.Key) bool {
	c.EpochEnter()
	defer c.EpochExit()
	var pa [maxMaxLevel]*pNode
	preds := pa[:s.maxLevel]
	victim := s.find(k, preds)
	restarts := 0
	if victim.key != k {
		c.RecordRestarts(0)
		return false
	}
	// Decide membership atomically under the victim's lock.
	victim.lock.Acquire(c.Stat())
	if victim.marked.Load() {
		victim.lock.Release()
		c.RecordRestarts(0)
		return false
	}
	c.InCS()
	s.guard.BeginWrite(c.Stat())
	victim.marked.Store(true)
	s.guard.EndWrite()
	victim.lock.Release()

	// Best-effort unlink, top level first; lockLevel's helping removes the
	// node from each level as a side effect of the slide.
	for lvl := victim.topLevel; lvl >= 0; lvl-- {
		p := s.lockLevelFrom(c, preds[lvl], k, lvl, &restarts)
		p.lock.Release()
	}
	c.Retire(victim, reclaimPNode)
	c.RecordRestarts(restarts)
	return true
}

// Len implements core.Set (quiesced use): level-0 walk.
func (s *Pugh) Len() int {
	n := 0
	for curr := s.head.next[0].Load(); curr.key != core.KeyMax; curr = curr.next[0].Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}

// Range implements core.Ranger: an in-order level-0 walk over unmarked
// nodes, quiesced-use like Len.
func (s *Pugh) Range(f func(k core.Key, v core.Value) bool) {
	for curr := s.head.next[0].Load(); curr.key != core.KeyMax; curr = curr.next[0].Load() {
		if !curr.marked.Load() && !f(curr.key, curr.val) {
			return
		}
	}
}

// Scan implements core.Scanner: a read-only tower descent to the first
// in-range node, then an optimistic level-0 walk validated by the scan
// guard; atomic per call.
func (s *Pugh) Scan(c *core.Ctx, lo, hi core.Key, f func(k core.Key, v core.Value) bool) bool {
	if lo >= hi {
		return true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedScan(c, &s.guard, func(emit func(k core.Key, v core.Value)) {
		pred := s.head
		for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
			curr := pred.next[lvl].Load()
			for curr.key < lo {
				pred = curr
				curr = pred.next[lvl].Load()
			}
		}
		for curr := pred.next[0].Load(); curr.key < hi; curr = curr.next[0].Load() {
			if !curr.marked.Load() {
				emit(curr.key, curr.val)
			}
		}
	}, f)
}

// CursorNext implements core.Cursor: O(log n) descent to the token
// position, then a bounded guard-validated level-0 page (see
// Herlihy.CursorNext; the protocols are identical).
func (s *Pugh) CursorNext(c *core.Ctx, pos, hi core.Key, max int, f func(k core.Key, v core.Value) bool) (core.Key, bool) {
	if pos >= hi {
		return hi, true
	}
	c.EpochEnter()
	defer c.EpochExit()
	return core.GuardedPage(c, &s.guard, hi, max, func(emit func(k core.Key, v core.Value) bool) {
		pred := s.head
		for lvl := s.maxLevel - 1; lvl >= 0; lvl-- {
			curr := pred.next[lvl].Load()
			for curr.key < pos {
				pred = curr
				curr = pred.next[lvl].Load()
			}
		}
		for curr := pred.next[0].Load(); curr.key < hi; curr = curr.next[0].Load() {
			if !curr.marked.Load() && !emit(curr.key, curr.val) {
				return
			}
		}
	}, f)
}
