// ReclaimAll (core.Reclaimer) for the pooled skip lists: quiesced
// teardown sweeps over the bottom level that recycle every tower at
// once (same contract as the list package: the caller guarantees the
// instance is quiesced and discarded — the elastic resize's retire
// callback). The lock-free skip list has no pool (pool.go) and so no
// ReclaimAll.
package skiplist

import "csds/internal/core"

// ReclaimAll implements core.Reclaimer: recycle every data tower.
func (s *Herlihy) ReclaimAll() {
	curr := s.head.next[0].Load()
	for curr != s.tail {
		next := curr.next[0].Load()
		reclaimHNode(curr)
		curr = next
	}
	for i := range s.head.next {
		s.head.next[i].Store(s.tail)
	}
}

// ReclaimAll implements core.Reclaimer: recycle every data tower (the
// KeyMax tail sentinel stays).
func (s *Pugh) ReclaimAll() {
	curr := s.head.next[0].Load()
	for curr.key != core.KeyMax {
		next := curr.next[0].Load()
		reclaimPNode(curr)
		curr = next
	}
	for i := range s.head.next {
		s.head.next[i].Store(curr)
	}
}
