package skiplist

import (
	"sync"
	"testing"

	"csds/internal/core"
	"csds/internal/settest"
	"csds/internal/xrand"
)

func TestHerlihy(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewHerlihy(o) })
}

func TestHerlihyElided(t *testing.T) {
	settest.RunElided(t, func(o core.Options) core.Set { return NewHerlihy(o) })
}

func TestHerlihyEBR(t *testing.T) {
	settest.RunEBR(t, func(o core.Options) core.Set { return NewHerlihy(o) })
}

func TestPugh(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewPugh(o) })
}

// TestScanners runs the linearizable range-scan battery on every skip
// list; all are ordered structures.
func TestScanners(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"herlihy":  func(o core.Options) core.Set { return NewHerlihy(o) },
		"pugh":     func(o core.Options) core.Set { return NewPugh(o) },
		"lockfree": func(o core.Options) core.Set { return NewLockFree(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunScanner(t, mk, true) })
	}
}

// TestCursors runs the paginated-iteration battery on every skip list.
func TestCursors(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"herlihy":  func(o core.Options) core.Set { return NewHerlihy(o) },
		"pugh":     func(o core.Options) core.Set { return NewPugh(o) },
		"lockfree": func(o core.Options) core.Set { return NewLockFree(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunCursor(t, mk) })
	}
}

// TestBatchers runs the batched-operation battery on every skip list
// (sorted point application — a resumed level-0 walk would forfeit the
// logarithmic descents, see batch.go).
func TestBatchers(t *testing.T) {
	for name, mk := range map[string]func(core.Options) core.Set{
		"herlihy":  func(o core.Options) core.Set { return NewHerlihy(o) },
		"pugh":     func(o core.Options) core.Set { return NewPugh(o) },
		"lockfree": func(o core.Options) core.Set { return NewLockFree(o) },
	} {
		t.Run(name, func(t *testing.T) { settest.RunBatcher(t, mk) })
	}
}

func TestRegistry(t *testing.T) {
	info, ok := core.Featured("skiplist")
	if !ok || info.Name != "skiplist/herlihy" {
		t.Fatalf("featured skiplist = %+v", info)
	}
	if _, ok := core.Lookup("skiplist/pugh"); !ok {
		t.Fatal("skiplist/pugh not registered")
	}
}

func TestLevelForSize(t *testing.T) {
	cases := map[int]bool{0: true, 10: true, 1024: true, 1 << 30: true}
	for n := range cases {
		l := levelForSize(n)
		if l < 4 || l > maxMaxLevel {
			t.Fatalf("levelForSize(%d) = %d out of bounds", n, l)
		}
	}
	if levelForSize(1024) < levelForSize(16) {
		t.Fatal("levelForSize not monotone")
	}
}

func TestRandomLevelDistribution(t *testing.T) {
	rng := xrand.New(42)
	const draws = 100000
	counts := make([]int, 33)
	for i := 0; i < draws; i++ {
		l := randomLevel(rng, 32)
		if l < 1 || l > 32 {
			t.Fatalf("randomLevel out of range: %d", l)
		}
		counts[l]++
	}
	// P(level 1) = 1/2, P(level 2) = 1/4: check coarse geometry.
	if counts[1] < draws*45/100 || counts[1] > draws*55/100 {
		t.Fatalf("P(level=1) = %f, want ~0.5", float64(counts[1])/draws)
	}
	if counts[2] < draws*20/100 || counts[2] > draws*30/100 {
		t.Fatalf("P(level=2) = %f, want ~0.25", float64(counts[2])/draws)
	}
	// Capped draw.
	for i := 0; i < 1000; i++ {
		if l := randomLevel(rng, 4); l > 4 {
			t.Fatalf("randomLevel ignored cap: %d", l)
		}
	}
}

// TestHerlihyLevel0Sorted checks the bottom-level list invariant after
// concurrent churn.
func TestHerlihyLevel0Sorted(t *testing.T) {
	s := NewHerlihy(core.Options{ExpectedSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 31)
			for i := 0; i < 4000; i++ {
				k := core.Key(rng.Int63n(64))
				if rng.Bool(0.5) {
					s.Put(c, k, k)
				} else {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	prev := core.KeyMin
	for n := s.head.next[0].Load(); n.key != core.KeyMax; n = n.next[0].Load() {
		if n.key <= prev {
			t.Fatalf("level 0 unsorted/duplicated: %d after %d", n.key, prev)
		}
		prev = n.key
	}
	// Every upper-level chain must be a subsequence of level 0 ordering.
	for lvl := 1; lvl < s.maxLevel; lvl++ {
		prev := core.KeyMin
		for n := s.head.next[lvl].Load(); n.key != core.KeyMax; n = n.next[lvl].Load() {
			if n.key <= prev {
				t.Fatalf("level %d unsorted: %d after %d", lvl, n.key, prev)
			}
			prev = n.key
		}
	}
}

// TestPughTowersEventuallyClean: after quiescing plus a full sweep of
// operations, no marked node should remain reachable at level 0.
func TestPughTowersEventuallyClean(t *testing.T) {
	s := NewPugh(core.Options{ExpectedSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 77)
			for i := 0; i < 3000; i++ {
				k := core.Key(rng.Int63n(32))
				if rng.Bool(0.5) {
					s.Put(c, k, k)
				} else {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	// A final pass of removes cleans every key's path.
	c := core.NewCtx(0)
	for k := core.Key(0); k < 32; k++ {
		s.Remove(c, k)
	}
	for n := s.head.next[0].Load(); n.key != core.KeyMax; n = n.next[0].Load() {
		if n.marked.Load() {
			t.Fatal("marked node still reachable at level 0 after cleaning sweep")
		}
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after removing every key", s.Len())
	}
}

func TestHerlihyMaxLevelOption(t *testing.T) {
	s := NewHerlihy(core.Options{MaxLevel: 6})
	if s.maxLevel != 6 {
		t.Fatalf("maxLevel = %d, want 6", s.maxLevel)
	}
	c := core.NewCtx(0)
	for i := 0; i < 500; i++ {
		s.Put(c, core.Key(i), core.Value(i))
	}
	if s.Len() != 500 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 500; i++ {
		if v, ok := s.Get(c, core.Key(i)); !ok || v != core.Value(i) {
			t.Fatalf("Get(%d) = (%d, %v)", i, v, ok)
		}
	}
}

func TestLockFree(t *testing.T) {
	settest.Run(t, func(o core.Options) core.Set { return NewLockFree(o) })
}

func TestLockFreeEBR(t *testing.T) {
	settest.RunEBR(t, func(o core.Options) core.Set { return NewLockFree(o) })
}

func TestLockFreeLevel0Sorted(t *testing.T) {
	s := NewLockFree(core.Options{ExpectedSize: 64})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := core.NewCtx(w)
			rng := xrand.New(uint64(w) + 91)
			for i := 0; i < 4000; i++ {
				k := core.Key(rng.Int63n(64))
				if rng.Bool(0.5) {
					s.Put(c, k, k)
				} else {
					s.Remove(c, k)
				}
			}
		}(w)
	}
	wg.Wait()
	prev := core.KeyMin
	for n := s.head.next[0].Load().next; n.key != core.KeyMax; {
		link := n.next[0].Load()
		if !link.marked {
			if n.key <= prev {
				t.Fatalf("lock-free skiplist level 0 unsorted/dup: %d after %d", n.key, prev)
			}
			prev = n.key
		}
		n = link.next
	}
}

func TestLockFreeNeverRecordsLockStats(t *testing.T) {
	s := NewLockFree(core.Options{})
	c := core.NewCtx(0)
	for i := 0; i < 2000; i++ {
		s.Put(c, core.Key(i%64), 1)
		s.Remove(c, core.Key(i%32))
	}
	if c.Stats.LockAcqs != 0 || c.Stats.LockWaits != 0 {
		t.Fatal("lock-free algorithm touched lock statistics")
	}
}
