package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Hist is a power-of-two bucketed histogram for nanosecond-scale durations.
// Bucket i covers [2^i, 2^(i+1)) ns, bucket 0 covers [0, 2). It supports the
// outlier analysis of Section 5.1 ("no requests waiting for more than 6µs")
// without storing per-request samples.
//
// Like Thread, a Hist is single-writer; merge after quiescence.
type Hist struct {
	Buckets [64]uint64
	Count   uint64
	Sum     uint64
	Max     uint64
}

// Add records one sample of v nanoseconds.
func (h *Hist) Add(v uint64) {
	h.Buckets[bucketOf(v)]++
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	return bits.Len64(v) - 1
}

// Merge adds o into h.
func (h *Hist) Merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Mean returns the average sample value.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using
// bucket upper edges; exact enough for order-of-magnitude outlier reports.
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target >= h.Count {
		target = h.Count - 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen > target {
			if i == 63 {
				return h.Max
			}
			edge := uint64(1) << uint(i+1)
			if edge > h.Max && h.Max > 0 {
				return h.Max
			}
			return edge
		}
	}
	return h.Max
}

// CountAbove returns how many samples exceeded threshold ns (conservative:
// counts whole buckets whose lower edge is >= threshold, plus uses Max for
// the top).
func (h *Hist) CountAbove(threshold uint64) uint64 {
	var n uint64
	for i, c := range h.Buckets {
		lower := uint64(0)
		if i > 0 {
			lower = uint64(1) << uint(i)
		}
		if lower >= threshold {
			n += c
		}
	}
	return n
}

// String renders the non-empty buckets, for debugging and reports.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%.0fns max=%dns", h.Count, h.Mean(), h.Max)
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = uint64(1) << uint(i)
		}
		fmt.Fprintf(&b, " [%d,%d):%d", lo, uint64(1)<<uint(i+1), c)
	}
	return b.String()
}
