// Package stats implements the fine-grained performance metrics of the
// paper (Section 2.3): per-thread throughput, the time operations spend
// waiting to acquire locks, the number of times operations restart, and the
// HTM-elision fallback counters of Section 5.4.
//
// Recording is strictly per-thread: a Thread is owned by exactly one worker
// goroutine and written without atomics, so instrumentation does not
// introduce the very contention it measures. Threads are padded so that two
// workers' counters never share a cache line. Aggregation happens after the
// measurement window, when workers have quiesced.
package stats

import "math"

// RestartBuckets is the number of exact restart counts tracked per
// operation; operations restarted >= RestartBuckets-1 times land in the
// last bucket. The paper reports "restarted at least once" and "restarted
// more than 3 times", both derivable from these buckets.
const RestartBuckets = 8

// AbortCause enumerates why an emulated hardware transaction aborted.
type AbortCause int

const (
	// AbortConflict: another thread wrote a cell in our read/write set,
	// or owned a cell we wanted (data conflict, Equation 7/8 territory).
	AbortConflict AbortCause = iota
	// AbortInterrupt: an injected context switch / interrupt fired during
	// the transaction (the abort-on-interrupt behaviour of Intel TSX that
	// Section 5.4 turns to its advantage).
	AbortInterrupt
	// AbortFallback: some thread holds the fallback lock, so speculation
	// is forbidden (standard lock-elision subscription).
	AbortFallback
	// AbortCapacity: transaction touched more cells than the emulated
	// read/write set capacity (rare in CSDS write phases; modeled for
	// completeness).
	AbortCapacity
	numAbortCauses
)

// String returns the short name used in reports.
func (c AbortCause) String() string {
	switch c {
	case AbortConflict:
		return "conflict"
	case AbortInterrupt:
		return "interrupt"
	case AbortFallback:
		return "fallback-held"
	case AbortCapacity:
		return "capacity"
	}
	return "unknown"
}

// Thread accumulates the metrics of a single worker. All fields are plain
// (non-atomic); only the owning goroutine may write them while running.
type Thread struct {
	// Coarse-grained.
	Ops     uint64 // completed operations (reads + updates)
	Reads   uint64 // get operations
	Inserts uint64 // put operations (attempted)
	Removes uint64 // remove operations (attempted)
	Hits    uint64 // operations that found / modified their key

	// Lock waiting (Section 5.1 methodology: only the contended path is
	// timed, the uncontended acquisition records zero wait without reading
	// the clock).
	LockAcqs   uint64 // total lock acquisitions
	LockWaits  uint64 // acquisitions that had to wait
	LockWaitNs uint64 // total nanoseconds spent waiting
	MaxWaitNs  uint64 // worst single wait (outlier detection, §5.1)

	// Restarts. RestartedOps[k] counts operations that restarted exactly k
	// times (k = RestartBuckets-1 is ">= RestartBuckets-1").
	Restarts     uint64 // total restart events
	RestartedOps [RestartBuckets]uint64

	// Emulated HTM (Section 5.4 / Table 2).
	TxAttempts  uint64 // speculative attempts (including retries)
	TxCommits   uint64
	TxAborts    [numAbortCauses]uint64
	TxFallbacks uint64 // critical sections that reverted to the real lock

	// Range scans (the Scanner extension). Scans keep their own counters —
	// they never contribute to Ops or the restart histogram — so the
	// paper's point-operation metrics stay exactly what they were.
	Scans       uint64 // completed range scans
	ScanKeys    uint64 // mappings the scans returned, summed
	ScanNs      uint64 // wall time spent inside Scan calls
	MaxScanNs   uint64 // worst single scan (tail latency)
	ScanRetries uint64 // optimistic scan attempts invalidated by updates

	// Paginated (cursor) scans. Pages keep their own counters, separate
	// from one-shot scans and from point ops, so a paginated mix never
	// skews either of those: pages/sec and per-page resume-validation
	// retries are first-class metrics of the Cursor extension.
	Pages         uint64 // cursor pages (Next batches) completed
	PageKeys      uint64 // mappings the pages delivered, summed
	PageNs        uint64 // wall time spent inside Next calls
	MaxPageNs     uint64 // worst single page (tail latency)
	CursorScans   uint64 // full paginated iterations completed
	CursorRetries uint64 // page collects invalidated by updates (or stale epochs)

	// Page pull (refill) counters: how much the page collects actually
	// materialized. PagePulls counts bounded leaf collects (a streaming
	// merge's per-part refills each count once); PagePullKeys sums the
	// keys those collects touched, overshoot and invalidated retries
	// included. PagePullKeys / PageKeys is the overcollect factor — the
	// measurable form of the O(page)-not-O(structure) page-cost contract.
	PagePulls    uint64
	PagePullKeys uint64

	// Batched operations (the Batcher extension). Batches keep their own
	// counters — batch keys never contribute to Ops, the hit rate or the
	// restart histogram — so the paper's point-op metrics stay exactly
	// what they were, mirroring the scan/page discipline above.
	Batches         uint64 // completed Multi* calls
	BatchKeys       uint64 // batch elements applied, summed
	BatchNs         uint64 // wall time spent inside Multi* calls
	MaxBatchNs      uint64 // worst single batch (tail latency)
	CombinedBatches uint64 // batches applied via a flat-combining list
	CombineStalls   uint64 // combining waits that exceeded the stall threshold

	// Memory reclamation (the EBR + pooling path). Retires counts nodes
	// this worker handed to EBR; Reclaims counts nodes whose grace period
	// elapsed on this worker's record (copied from the ebr.Record at
	// teardown, so late flushes are included). PoolHits/PoolMisses count
	// node and page-buffer allocations served from a typed free-list vs
	// fallen through to make/new — their ratio is the pool_hit_frac bench
	// column.
	Retires    uint64
	Reclaims   uint64
	PoolHits   uint64
	PoolMisses uint64

	// Read-through cache (the readcache combinator). CacheHits are gets
	// served from the cached entry (one atomic load); CacheMisses
	// consulted the inner structure, of which CacheExpiries are the
	// subset whose cached entry had outlived the TTL (the stale value is
	// never served — it is re-fetched and refreshed in place).
	// CacheFills installed a fresh entry; CacheRejects are fills the
	// admission policy refused. These are per-thread plain increments
	// like every other counter here — recording a hit does not add a
	// shared RMW to the cache's read path.
	CacheHits     uint64
	CacheMisses   uint64
	CacheFills    uint64
	CacheExpiries uint64
	CacheRejects  uint64

	// Wall-clock of the thread's measurement window, set by the harness.
	ActiveNs uint64

	// Trylock failures that forced a retry loop (BST-TK style, §5.1:
	// "the time spent waiting for locks is zero, but this is compensated
	// by the slightly higher percentage of operations that are restarted").
	TrylockFails uint64

	_ [64]byte // pad to keep adjacent Threads off the same cache line
}

// RecordRead notes a completed get; hit says whether the key was present.
func (t *Thread) RecordRead(hit bool) {
	t.Ops++
	t.Reads++
	if hit {
		t.Hits++
	}
}

// RecordInsert notes a completed put; ok says whether it inserted.
func (t *Thread) RecordInsert(ok bool) {
	t.Ops++
	t.Inserts++
	if ok {
		t.Hits++
	}
}

// RecordRemove notes a completed remove; ok says whether it removed.
func (t *Thread) RecordRemove(ok bool) {
	t.Ops++
	t.Removes++
	if ok {
		t.Hits++
	}
}

// RecordScan notes a completed range scan that returned keys mappings and
// took ns nanoseconds of wall time.
func (t *Thread) RecordScan(keys int, ns uint64) {
	t.Scans++
	t.ScanKeys += uint64(keys)
	t.ScanNs += ns
	if ns > t.MaxScanNs {
		t.MaxScanNs = ns
	}
}

// RecordScanRetries notes that a scan needed n optimistic retries before
// its snapshot validated (n includes the fallback, if taken).
func (t *Thread) RecordScanRetries(n int) {
	t.ScanRetries += uint64(n)
}

// RecordPage notes a completed cursor page that delivered keys mappings
// and took ns nanoseconds of wall time.
func (t *Thread) RecordPage(keys int, ns uint64) {
	t.Pages++
	t.PageKeys += uint64(keys)
	t.PageNs += ns
	if ns > t.MaxPageNs {
		t.MaxPageNs = ns
	}
}

// RecordCursorScan notes one full paginated iteration (a sequence of
// pages driven to done).
func (t *Thread) RecordCursorScan() { t.CursorScans++ }

// RecordCursorRetries notes that a cursor page needed n retries —
// invalidated optimistic collects or abandoned (stale) shard-map epochs —
// before it delivered (n includes the fallback, if taken).
func (t *Thread) RecordCursorRetries(n int) {
	t.CursorRetries += uint64(n)
}

// RecordPagePull notes one bounded page collect (a leaf page or one
// per-part refill of a streaming merge) that materialized keys mappings,
// overshoot and retry re-collects included.
func (t *Thread) RecordPagePull(keys int) {
	t.PagePulls++
	t.PagePullKeys += uint64(keys)
}

// RecordBatch notes a completed batched operation that applied keys
// elements and took ns nanoseconds of wall time.
func (t *Thread) RecordBatch(keys int, ns uint64) {
	t.Batches++
	t.BatchKeys += uint64(keys)
	t.BatchNs += ns
	if ns > t.MaxBatchNs {
		t.MaxBatchNs = ns
	}
}

// RecordCombined notes that one of this thread's batches was applied
// through a flat-combining publication list (by this thread or by the
// combining winner on its behalf).
func (t *Thread) RecordCombined() { t.CombinedBatches++ }

// RecordCombineStall notes that a wait for a flat-combining winner ran
// long enough to look wedged (once per episode, not per spin). A loser
// cannot safely proceed — the winner may be mid-apply on its keys — so
// the stall surfaces here and in the server audit, and the EBR watchdog
// handles the reclamation side (the winner holds an epoch bracket).
func (t *Thread) RecordCombineStall() { t.CombineStalls++ }

// RecordCacheHit notes a get served straight from a read-through cache.
func (t *Thread) RecordCacheHit() { t.CacheHits++ }

// RecordCacheMiss notes a get that consulted the inner structure;
// expired says a cached entry was present but had outlived its TTL.
func (t *Thread) RecordCacheMiss(expired bool) {
	t.CacheMisses++
	if expired {
		t.CacheExpiries++
	}
}

// RecordCacheFill notes a fresh entry installed in a read-through cache.
func (t *Thread) RecordCacheFill() { t.CacheFills++ }

// RecordCacheReject notes a fill refused by the cache admission policy.
func (t *Thread) RecordCacheReject() { t.CacheRejects++ }

// RecordAcquire notes an uncontended lock acquisition.
func (t *Thread) RecordAcquire() { t.LockAcqs++ }

// RecordWait notes a contended acquisition that waited ns nanoseconds.
func (t *Thread) RecordWait(ns uint64) {
	t.LockAcqs++
	t.LockWaits++
	t.LockWaitNs += ns
	if ns > t.MaxWaitNs {
		t.MaxWaitNs = ns
	}
}

// RecordRestarts notes that an operation completed after n restarts.
func (t *Thread) RecordRestarts(n int) {
	t.Restarts += uint64(n)
	if n >= RestartBuckets {
		n = RestartBuckets - 1
	}
	t.RestartedOps[n]++
}

// RecordTrylockFail notes a failed trylock that will trigger a restart.
func (t *Thread) RecordTrylockFail() { t.TrylockFails++ }

// RecordTxAttempt notes one speculative execution attempt.
func (t *Thread) RecordTxAttempt() { t.TxAttempts++ }

// RecordTxCommit notes a successful speculative commit.
func (t *Thread) RecordTxCommit() { t.TxCommits++ }

// RecordTxAbort notes an abort with its cause.
func (t *Thread) RecordTxAbort(c AbortCause) {
	if c < 0 || c >= numAbortCauses {
		return
	}
	t.TxAborts[c]++
}

// RecordTxFallback notes a critical section that gave up on speculation and
// took the real lock (the Table 2 numerator).
func (t *Thread) RecordTxFallback() { t.TxFallbacks++ }

// Merge adds o's counters into t (used when a logical thread is measured in
// slices, e.g. across simulator quanta).
func (t *Thread) Merge(o *Thread) {
	t.Ops += o.Ops
	t.Reads += o.Reads
	t.Inserts += o.Inserts
	t.Removes += o.Removes
	t.Hits += o.Hits
	t.LockAcqs += o.LockAcqs
	t.LockWaits += o.LockWaits
	t.LockWaitNs += o.LockWaitNs
	if o.MaxWaitNs > t.MaxWaitNs {
		t.MaxWaitNs = o.MaxWaitNs
	}
	t.Restarts += o.Restarts
	for i := range t.RestartedOps {
		t.RestartedOps[i] += o.RestartedOps[i]
	}
	t.TxAttempts += o.TxAttempts
	t.TxCommits += o.TxCommits
	for i := range t.TxAborts {
		t.TxAborts[i] += o.TxAborts[i]
	}
	t.TxFallbacks += o.TxFallbacks
	t.Scans += o.Scans
	t.ScanKeys += o.ScanKeys
	t.ScanNs += o.ScanNs
	if o.MaxScanNs > t.MaxScanNs {
		t.MaxScanNs = o.MaxScanNs
	}
	t.ScanRetries += o.ScanRetries
	t.Pages += o.Pages
	t.PageKeys += o.PageKeys
	t.PageNs += o.PageNs
	if o.MaxPageNs > t.MaxPageNs {
		t.MaxPageNs = o.MaxPageNs
	}
	t.CursorScans += o.CursorScans
	t.CursorRetries += o.CursorRetries
	t.PagePulls += o.PagePulls
	t.PagePullKeys += o.PagePullKeys
	t.Batches += o.Batches
	t.BatchKeys += o.BatchKeys
	t.BatchNs += o.BatchNs
	if o.MaxBatchNs > t.MaxBatchNs {
		t.MaxBatchNs = o.MaxBatchNs
	}
	t.CombinedBatches += o.CombinedBatches
	t.CombineStalls += o.CombineStalls
	t.Retires += o.Retires
	t.Reclaims += o.Reclaims
	t.PoolHits += o.PoolHits
	t.PoolMisses += o.PoolMisses
	t.CacheHits += o.CacheHits
	t.CacheMisses += o.CacheMisses
	t.CacheFills += o.CacheFills
	t.CacheExpiries += o.CacheExpiries
	t.CacheRejects += o.CacheRejects
	t.ActiveNs += o.ActiveNs
	t.TrylockFails += o.TrylockFails
}

// CacheHitFraction returns CacheHits / (CacheHits + CacheMisses) — the
// read-through cache's hit rate (0 when no cache is in the composition).
func (t *Thread) CacheHitFraction() float64 {
	total := t.CacheHits + t.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(t.CacheHits) / float64(total)
}

// PoolHitFraction returns PoolHits / (PoolHits + PoolMisses) — the
// fraction of node/buffer allocations served by recycling.
func (t *Thread) PoolHitFraction() float64 {
	total := t.PoolHits + t.PoolMisses
	if total == 0 {
		return 0
	}
	return float64(t.PoolHits) / float64(total)
}

// WaitFraction returns the fraction of the thread's active time spent
// waiting for locks (Figure 5's y axis).
func (t *Thread) WaitFraction() float64 {
	if t.ActiveNs == 0 {
		return 0
	}
	return float64(t.LockWaitNs) / float64(t.ActiveNs)
}

// RestartedAtLeast returns the fraction of operations restarted >= k times.
func (t *Thread) RestartedAtLeast(k int) float64 {
	if t.Ops == 0 {
		return 0
	}
	var n uint64
	for i := k; i < RestartBuckets; i++ {
		n += t.RestartedOps[i]
	}
	return float64(n) / float64(t.Ops)
}

// FallbackFraction returns TxFallbacks / (speculative critical sections),
// i.e. the fraction of lock-acquisition calls that ended up actually taking
// the lock — the Table 2 metric.
func (t *Thread) FallbackFraction() float64 {
	cs := t.TxFallbacks + t.TxCommits
	if cs == 0 {
		return 0
	}
	return float64(t.TxFallbacks) / float64(cs)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
