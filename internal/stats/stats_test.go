package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecordOpsCounts(t *testing.T) {
	var th Thread
	th.RecordRead(true)
	th.RecordRead(false)
	th.RecordInsert(true)
	th.RecordRemove(false)
	if th.Ops != 4 || th.Reads != 2 || th.Inserts != 1 || th.Removes != 1 {
		t.Fatalf("counts wrong: %+v", th)
	}
	if th.Hits != 2 {
		t.Fatalf("hits = %d, want 2", th.Hits)
	}
}

func TestWaitAccounting(t *testing.T) {
	var th Thread
	th.RecordAcquire()
	th.RecordWait(100)
	th.RecordWait(500)
	if th.LockAcqs != 3 || th.LockWaits != 2 {
		t.Fatalf("acq/wait counts wrong: %+v", th)
	}
	if th.LockWaitNs != 600 || th.MaxWaitNs != 500 {
		t.Fatalf("wait ns wrong: %+v", th)
	}
	th.ActiveNs = 6000
	if got := th.WaitFraction(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("WaitFraction = %f, want 0.1", got)
	}
}

func TestWaitFractionZeroActive(t *testing.T) {
	var th Thread
	th.RecordWait(100)
	if th.WaitFraction() != 0 {
		t.Fatal("WaitFraction with zero ActiveNs must be 0")
	}
}

func TestRestartBuckets(t *testing.T) {
	var th Thread
	th.RecordRestarts(0)
	th.RecordRestarts(0)
	th.RecordRestarts(1)
	th.RecordRestarts(2)
	th.RecordRestarts(4)
	th.RecordRestarts(100) // lumps into last bucket
	th.Ops = 6
	if th.RestartedOps[0] != 2 || th.RestartedOps[1] != 1 || th.RestartedOps[2] != 1 {
		t.Fatalf("buckets wrong: %v", th.RestartedOps)
	}
	if th.RestartedOps[RestartBuckets-1] != 1 {
		t.Fatalf("overflow bucket wrong: %v", th.RestartedOps)
	}
	if th.Restarts != 0+0+1+2+4+100 {
		t.Fatalf("total restarts = %d", th.Restarts)
	}
	if got := th.RestartedAtLeast(1); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("RestartedAtLeast(1) = %f", got)
	}
	if got := th.RestartedAtLeast(4); math.Abs(got-2.0/6) > 1e-12 {
		t.Fatalf("RestartedAtLeast(4) = %f", got)
	}
}

func TestRestartedAtLeastZeroOps(t *testing.T) {
	var th Thread
	if th.RestartedAtLeast(1) != 0 {
		t.Fatal("no ops must give 0 restart fraction")
	}
}

func TestTxAccounting(t *testing.T) {
	var th Thread
	th.RecordTxAttempt()
	th.RecordTxAbort(AbortConflict)
	th.RecordTxAttempt()
	th.RecordTxAbort(AbortInterrupt)
	th.RecordTxAttempt()
	th.RecordTxCommit()
	th.RecordTxFallback()
	if th.TxAttempts != 3 || th.TxCommits != 1 || th.TxFallbacks != 1 {
		t.Fatalf("tx counts wrong: %+v", th)
	}
	if th.TxAborts[AbortConflict] != 1 || th.TxAborts[AbortInterrupt] != 1 {
		t.Fatalf("abort causes wrong: %v", th.TxAborts)
	}
	if got := th.FallbackFraction(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FallbackFraction = %f, want 0.5 (1 fallback, 1 commit)", got)
	}
}

func TestFallbackFractionNoCS(t *testing.T) {
	var th Thread
	if th.FallbackFraction() != 0 {
		t.Fatal("FallbackFraction with no critical sections must be 0")
	}
}

func TestAbortCauseString(t *testing.T) {
	cases := map[AbortCause]string{
		AbortConflict:  "conflict",
		AbortInterrupt: "interrupt",
		AbortFallback:  "fallback-held",
		AbortCapacity:  "capacity",
		AbortCause(99): "unknown",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestRecordTxAbortOutOfRange(t *testing.T) {
	var th Thread
	th.RecordTxAbort(AbortCause(-1))
	th.RecordTxAbort(AbortCause(100))
	for _, v := range th.TxAborts {
		if v != 0 {
			t.Fatal("out-of-range abort cause must be ignored")
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b Thread
	a.RecordRead(true)
	a.RecordWait(10)
	a.RecordRestarts(1)
	a.ActiveNs = 5
	a.RecordPagePull(5)
	b.RecordInsert(false)
	b.RecordWait(30)
	b.RecordRestarts(2)
	b.RecordPagePull(7)
	b.ActiveNs = 7
	b.MaxWaitNs = 30
	a.Merge(&b)
	if a.Ops != 2 || a.LockWaitNs != 40 || a.MaxWaitNs != 30 || a.ActiveNs != 12 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if a.PagePulls != 2 || a.PagePullKeys != 12 {
		t.Fatalf("merge pull counters wrong: %+v", a)
	}
	if a.RestartedOps[1] != 1 || a.RestartedOps[2] != 1 {
		t.Fatalf("merge restart buckets wrong: %v", a.RestartedOps)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %f", m)
	}
	if s := Stddev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("stddev = %f", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestHistBasic(t *testing.T) {
	var h Hist
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(1024)
	if h.Count != 5 || h.Max != 1024 || h.Sum != 1030 {
		t.Fatalf("hist wrong: %+v", h)
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 2 || h.Buckets[10] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Buckets[:12])
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for i := 0; i < 99; i++ {
		h.Add(8) // bucket [8,16)
	}
	h.Add(1 << 20)
	if q := h.Quantile(0.5); q != 16 {
		t.Fatalf("median upper bound = %d, want 16", q)
	}
	if q := h.Quantile(1.0); q != 1<<20 {
		t.Fatalf("q100 = %d, want max", q)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
}

func TestHistCountAbove(t *testing.T) {
	var h Hist
	h.Add(10)    // [8,16)
	h.Add(100)   // [64,128)
	h.Add(10000) // [8192,16384)
	if n := h.CountAbove(64); n != 2 {
		t.Fatalf("CountAbove(64) = %d, want 2", n)
	}
	if n := h.CountAbove(1 << 20); n != 0 {
		t.Fatalf("CountAbove(big) = %d, want 0", n)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Add(5)
	b.Add(500)
	a.Merge(&b)
	if a.Count != 2 || a.Max != 500 || a.Sum != 505 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestHistString(t *testing.T) {
	var h Hist
	h.Add(5)
	s := h.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestHistQuantileMonotoneProperty(t *testing.T) {
	// Property: for any sample set, Quantile is monotone in q and bounded
	// by Max.
	f := func(raw []uint16) bool {
		var h Hist
		for _, v := range raw {
			h.Add(uint64(v))
		}
		prev := uint64(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return h.Count == 0 || prev <= h.Max || prev <= 2*h.Max+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadPaddingIndependence(t *testing.T) {
	// Sanity: adjacent threads in a slice do not alias state.
	ths := make([]Thread, 4)
	ths[1].RecordRead(true)
	if ths[0].Ops != 0 || ths[2].Ops != 0 {
		t.Fatal("adjacent thread state aliased")
	}
}
