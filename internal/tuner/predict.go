// Composite-aware bridge from the internal/sim structure models to
// measured bench-grid cells: PredictCell decomposes a composite spec
// (sharded/striped/elastic widths, readcache capacity) into adjustments
// of the leaf's cost model and runs the simulator on the result. It is
// the engine of cmd/csdsmodel -validate, which fits one global scale
// factor across the grid and reports per-cell residuals — the simulator
// is calibrated for shape, not nanoseconds, so only the relative error
// across cells is meaningful.
package tuner

import (
	"fmt"
	"math"

	"csds/internal/core"
	"csds/internal/sim"
	"csds/internal/xrand"
)

// Cell is one measured bench-grid cell, the subset of benchsnap's
// per-cell columns the prediction needs.
type Cell struct {
	Alg        string
	Threads    int
	Size       int
	Updates    float64
	Zipf       float64
	ScanFrac   float64
	CursorFrac float64
	BatchFrac  float64
}

// Composite is the decomposed shape of a spec: the leaf cost model plus
// the combinator parameters that matter to the simulator.
type Composite struct {
	Leaf       sim.Structure
	Width      int // product of sharded/striped/elastic widths (1 = none)
	CacheSlots int // readcache capacity (0 = none)
}

// ParseComposite decomposes an algorithm spec. Nested partition widths
// multiply (sharded(4,striped(2,x)) partitions 8 ways); nested caches
// sum their capacities (the outer one dominates in practice). Unknown
// leaves (no sim model) and unknown combinators error.
func ParseComposite(spec string) (Composite, error) {
	s, err := core.ParseSpec(spec)
	if err != nil {
		return Composite{}, err
	}
	comp := Composite{Width: 1}
	for !s.IsLeaf() {
		switch s.Name {
		case "sharded", "striped", "elastic":
			if s.Arg > 0 {
				comp.Width *= s.Arg
			}
		case "readcache":
			comp.CacheSlots += s.Arg
		default:
			return Composite{}, fmt.Errorf("tuner: no cost adjustment for combinator %q", s.Name)
		}
		s = s.Inner
	}
	leaf, ok := sim.ModelFor(s.Name)
	if !ok {
		return Composite{}, fmt.Errorf("tuner: no cost model for leaf %q", s.Name)
	}
	comp.Leaf = leaf
	return comp, nil
}

// hitMass returns the fraction of reads a cache of the given slot count
// absorbs under zipf(s) over the keyspace: the mass of the hottest
// slots/2 ranks. The /2 inverts Derive's direct-map collision slack —
// a direct-mapped table reliably holds about half its slot count in
// distinct hot keys before collisions start evicting the head.
func hitMass(slots int, keySpace int64, s float64) float64 {
	if slots <= 0 || s <= 0 || keySpace < 1 {
		return 0
	}
	z := xrand.NewZipf(keySpace, s)
	held := int64(slots / 2)
	if held < 1 {
		held = 1
	}
	if held > keySpace {
		held = keySpace
	}
	mass := 0.0
	for i := int64(1); i <= held; i++ {
		mass += z.P(i)
	}
	return mass
}

// PredictCell returns the simulator's predicted point-operation
// throughput (ops/s, unscaled) for the cell on the given machine.
//
// Combinator adjustments, in the order they wrap the leaf:
//
//   - width W: traversals see a structure 1/W the size (Hops(n) ->
//     leaf.Hops(n/W)) and the collision term both shrinks to the
//     per-shard size and divides by W (two writers must pick the same
//     shard before they can collide);
//   - readcache C: the captured read mass skips the traversal entirely,
//     modeled by scaling TraversalFactor by 1 - hitmass*(1-u) (the
//     update share still traverses to invalidate; cache-hit reads still
//     pay the fixed per-op overhead).
//
// Non-point operations are not simulated; the prediction scales by the
// point-op fraction so cells with scan/cursor/batch tails stay
// comparable to their measured mops column.
func PredictCell(c Cell, m sim.Machine) (float64, error) {
	comp, err := ParseComposite(c.Alg)
	if err != nil {
		return 0, err
	}
	st := comp.Leaf
	if comp.Width > 1 {
		w := comp.Width
		leafHops := st.Hops
		leafB := st.B
		st.Hops = func(n int) float64 {
			pn := n / w
			if pn < 1 {
				pn = 1
			}
			return leafHops(pn)
		}
		st.B = func(k, n int) float64 {
			pn := n / w
			if pn < 2 {
				pn = 2
			}
			return leafB(k, pn) / float64(w)
		}
	}
	keySpace := int64(2 * c.Size) // the harness default: structure holds half the domain
	var sumP2 float64
	if c.Zipf > 0 {
		sumP2 = xrand.NewZipf(keySpace, c.Zipf).SumPSquared()
	}
	if comp.CacheSlots > 0 {
		h := hitMass(comp.CacheSlots, keySpace, c.Zipf)
		st.TraversalFactor *= 1 - h*(1-c.Updates)
	}
	res := sim.Run(sim.Config{
		Machine:     m,
		Structure:   st,
		Threads:     c.Threads,
		Size:        c.Size,
		UpdateRatio: c.Updates,
		SumP2:       sumP2,
		Ops:         8192,
		Seed:        0x7E57,
	})
	pointFrac := 1 - c.ScanFrac - c.CursorFrac - c.BatchFrac
	if pointFrac < 0 {
		pointFrac = 0
	}
	return res.ThroughputOpsPerSec * pointFrac, nil
}

// NeutralMachine builds a flat machine model for validation runs: t
// hardware contexts with no socket or SMT topology, so the prediction's
// cross-cell shape comes from the structure and conflict models alone
// rather than from topology the measurement host does not have. The
// global scale fit in Validate absorbs the absolute hop latency.
func NeutralMachine(threads int) sim.Machine {
	if threads < 1 {
		threads = 1
	}
	return sim.Machine{
		Cores: threads, HWThreads: threads, SocketCores: threads,
		HopNs: refHopNs, CrossSocket: 0, SMTPenalty: 0,
		InvalidationFactor: 2.0,
		QuantumNs:          12e6, SwapNs: 37e6,
	}
}

// CellError is one cell's validation outcome.
type CellError struct {
	Key       string  // human-readable cell identity
	LiveMops  float64 // measured point throughput, Mops/s
	PredMops  float64 // scaled prediction, Mops/s
	ResidFrac float64 // pred/live - 1 after the global scale fit
}

// Validation is the grid-level result of Validate.
type Validation struct {
	Scale   float64 // fitted live/raw-prediction factor (geometric mean)
	MAEFrac float64 // mean |residual|
	Cells   []CellError
}

// Validate fits the simulator to measured cells with one global scale
// factor (geometric mean of live/predicted — the simulator predicts
// shape, the factor absorbs the measurement host's absolute speed) and
// returns per-cell residuals. Cells that cannot be predicted (unknown
// leaf or combinator) or did not measure point throughput are skipped.
func Validate(cells []Cell, keys []string, live []float64) (Validation, error) {
	if len(cells) != len(live) || len(cells) != len(keys) {
		return Validation{}, fmt.Errorf("tuner: %d cells, %d keys, %d measurements", len(cells), len(keys), len(live))
	}
	var v Validation
	var raw []float64
	var idx []int
	logSum := 0.0
	for i, c := range cells {
		if live[i] <= 0 {
			continue
		}
		p, err := PredictCell(c, NeutralMachine(c.Threads))
		if err != nil || p <= 0 {
			continue
		}
		raw = append(raw, p)
		idx = append(idx, i)
		logSum += math.Log(live[i] / p)
	}
	if len(raw) == 0 {
		return Validation{}, fmt.Errorf("tuner: no predictable cells")
	}
	v.Scale = math.Exp(logSum / float64(len(raw)))
	for j, i := range idx {
		pred := raw[j] * v.Scale
		resid := pred/live[i] - 1
		v.MAEFrac += math.Abs(resid)
		v.Cells = append(v.Cells, CellError{
			Key:       keys[i],
			LiveMops:  live[i] / 1e6,
			PredMops:  pred / 1e6,
			ResidFrac: resid,
		})
	}
	v.MAEFrac /= float64(len(v.Cells))
	return v, nil
}
