// Package tuner derives a composite structure specification from a
// workload description, closing the loop between the paper's Section 6
// analytic model and the runtime's combinator registry. Where the paper
// uses the birthday-paradox conflict terms to *explain* why blocking
// CSDSs behave practically wait-free, the tuner runs the same equations
// in reverse: given a workload (update ratio, skew, operation mix) and a
// machine (thread count, expected size), it picks the cheapest composite
// whose predicted conflict probability stays below a target and whose
// traversal work is not dominated by partitionable pointer chasing.
//
// The derivation is deterministic: every output is a pure function of
// the explicit Inputs, so the CI bench grid can pin the derived spec as
// a cell identity (benchsnap CheckGrid compares it string-for-string)
// without the answer drifting across hosts. GOMAXPROCS enters only as a
// CLI default in cmd/csdsmodel, never inside Derive.
//
// Three parameters are derived (DESIGN.md §7 documents each rule):
//
//   - shard width: the smallest power of two that (a) brings the
//     Section 6 conflict probability under ConflictTarget and (b) leaves
//     no shard whose expected parse phase still dwarfs the fixed
//     per-operation overhead (linear-traversal leaves keep gaining from
//     shorter lists long after conflicts stop mattering). The traversal
//     term only applies to point-dominated mixes: a range op visits
//     every shard and pays the merge fan-in wider partitions create, so
//     scan-heavy workloads keep the width the conflict term alone
//     demands;
//   - cache capacity: the smallest slot table whose hottest-rank Zipf
//     mass reaches HitMassTarget, quadrupled for direct-map collision
//     slack — emitted only when the mix is skewed, read-heavy,
//     point-read dominated, not think-time limited, and not drifting,
//     because a cache in front of a write-heavy or scan-heavy mix is
//     pure invalidation traffic, one in front of a client-paced mix
//     cannot raise the op rate at all, and one sized from a stationary
//     Zipf head decays as fast as a drifting working set rotates;
//   - streaming page size: cursor pages below width*StreamMinChunk keys
//     make every per-shard refill pull the floor chunk and throw most of
//     it away, so the tuner floors the page hint at that product.
//
// The same cost model powers PredictCell, the composite-aware bridge
// from internal/sim structures to measured bench-grid cells that
// cmd/csdsmodel -validate uses to report sim-vs-live error.
package tuner

import (
	"fmt"
	"math"
	"strings"

	"csds/internal/birthday"
	"csds/internal/core"
	"csds/internal/sim"
	"csds/internal/workload"
	"csds/internal/xrand"
)

// Defaults for the zero values of Inputs.
const (
	DefaultMaxWidth       = 64
	DefaultConflictTarget = 0.01
	DefaultHitMassTarget  = 0.5
)

// minShardSize floors the per-shard element count: below this, a shard
// is mostly fixed overhead and further splitting buys nothing but
// memory and merge fan-in.
const minShardSize = 64

// refHopNs is the nominal single-threaded pointer-hop latency used for
// the duration ratios in the conflict model (the paper's Xeon, sim.
// PaperXeon). Only ratios of durations matter for Equation (1)-(2), so
// the absolute value cancels; it is fixed here for determinism.
const refHopNs = 6.0

// Inputs describes one tuning problem. Leaf, Threads and Size are
// required; zero-valued knobs take the Default* constants.
type Inputs struct {
	// Leaf is the plain algorithm the composite wraps, e.g. "list/lazy".
	// It must be a leaf (no combinator application) with a sim cost
	// model (sim.ModelFor).
	Leaf string
	// Threads is the worker count the composite must absorb.
	Threads int
	// Size is the expected live element count.
	Size int
	// Workload describes the operation mix; it is run through
	// WithDefaults, so a bare named mix from workload.ParseMix works.
	Workload workload.Config
	// MaxWidth caps the shard width (power of two; default 64).
	MaxWidth int
	// ConflictTarget is the acceptable Section 6 conflict probability
	// (default 0.01 — an update should conflict less than 1% of the
	// time, the regime the paper calls practically wait-free).
	ConflictTarget float64
	// HitMassTarget is the fraction of point-read traffic the cache
	// should be able to absorb before a cache is worth its
	// invalidations (default 0.5).
	HitMassTarget float64
}

// Derived is the tuner's answer: a buildable composite spec plus the
// individual parameters and the reasoning behind each (Notes).
type Derived struct {
	// Spec is the composite specification, e.g.
	// "readcache(128,sharded(32,list/lazy))".
	Spec string
	// Width is the derived shard width (1 = no sharding layer).
	Width int
	// CacheSlots is the derived readcache capacity (0 = no cache layer).
	CacheSlots int
	// CacheAdmission is the recommended admission policy when
	// CacheSlots > 0: "tinylfu" for point-skewed mixes, "window" when
	// enough scan traffic flows through the cache to flush it.
	CacheAdmission string
	// PageLen is the cursor page-size hint (keys per page), floored at
	// Width*core.StreamMinChunk when the mix pages; 0 = no cursor ops.
	PageLen int64
	// Conflict is the predicted conflict probability at Width.
	Conflict float64
	// HitMass is the Zipf read mass the cache captures (0 = no cache).
	HitMass float64
	// Notes explain each derived parameter, one human-readable line per
	// decision, in derivation order.
	Notes []string
}

// Derive computes the composite spec for the inputs. It errors on an
// unknown or non-leaf algorithm and on out-of-range inputs; it never
// errors on a merely unusual workload (the notes say what it decided
// and why).
func Derive(in Inputs) (Derived, error) {
	if strings.ContainsAny(in.Leaf, "(),") {
		return Derived{}, fmt.Errorf("tuner: leaf %q is a composite; pass the plain algorithm the tuner should wrap", in.Leaf)
	}
	st, ok := sim.ModelFor(in.Leaf)
	if !ok {
		return Derived{}, fmt.Errorf("tuner: no cost model for algorithm %q (models exist for list, skiplist, hashtable, bst families)", in.Leaf)
	}
	if in.Threads < 1 {
		return Derived{}, fmt.Errorf("tuner: threads %d: want at least 1", in.Threads)
	}
	if in.Size < 1 {
		return Derived{}, fmt.Errorf("tuner: size %d: want at least 1", in.Size)
	}
	maxW := in.MaxWidth
	if maxW <= 0 {
		maxW = DefaultMaxWidth
	}
	maxW = pow2Floor(maxW)
	target := in.ConflictTarget
	if target <= 0 {
		target = DefaultConflictTarget
	}
	hitTarget := in.HitMassTarget
	if hitTarget <= 0 {
		hitTarget = DefaultHitMassTarget
	}
	wl := in.Workload
	wl.Size = in.Size
	wl = wl.WithDefaults()

	var d Derived
	var sumP2 float64
	if wl.ZipfS > 0 {
		sumP2 = xrand.NewZipf(wl.KeySpace, wl.ZipfS).SumPSquared()
	}

	// Shard width, term 1: conflict. Smallest power of two under the
	// target; MaxWidth if none reaches it (the skew floor from the
	// non-uniform term is width-independent — sharding cannot dilute a
	// single hot key).
	wConf := maxW
	for w := 1; w <= maxW; w *= 2 {
		if conflictAt(st, in.Threads, in.Size, w, wl.UpdateRatio, sumP2) <= target {
			wConf = w
			break
		}
	}
	// Term 2: traversal. Keep halving shards while the per-shard parse
	// phase still dominates the fixed per-op overhead and shards stay
	// above the size floor — linear structures (lists) keep gaining
	// here long after conflicts are negligible; logarithmic and
	// constant-hop leaves stop immediately. The term only applies when
	// point operations dominate: a scan or cursor visits every shard
	// and pays the k-way merge fan-in that wider partitions create, so
	// widening a scan-heavy mix trades a per-shard parse it rarely runs
	// for a merge it always runs.
	pointFrac := 1 - wl.ScanRatio - wl.CursorRatio - wl.BatchRatio
	if pointFrac < 0 {
		pointFrac = 0
	}
	wTrav := 1
	if pointFrac >= 0.5 {
		for wTrav*2 <= maxW {
			n := in.Size / wTrav
			if n < 2*minShardSize {
				break
			}
			if st.Hops(n)*refHopNs*st.TraversalFactor <= st.OverheadNs {
				break
			}
			wTrav *= 2
		}
	}
	d.Width = wConf
	if wTrav > d.Width {
		d.Width = wTrav
	}
	for d.Width > 1 && in.Size/d.Width < 2 {
		d.Width /= 2
	}
	d.Conflict = conflictAt(st, in.Threads, in.Size, d.Width, wl.UpdateRatio, sumP2)
	d.Notes = append(d.Notes, fmt.Sprintf(
		"width %d = max(conflict term %d, traversal term %d): predicted conflict %.4g (target %.3g) at %d threads, %d elems/shard",
		d.Width, wConf, wTrav, d.Conflict, target, in.Threads, in.Size/d.Width))
	if pointFrac < 0.5 {
		d.Notes = append(d.Notes, fmt.Sprintf(
			"traversal term skipped: only %.2g of ops are point operations, and range ops pay the merge fan-in wider partitions create", pointFrac))
	}

	// Cache capacity, gated five ways: the mix must be read-heavy
	// (invalidation-on-update otherwise churns the slots), skewed (a
	// uniform mix has no head to cache), point-read dominated (the
	// cache serves Get, not Scan), not think-time paced (a
	// client-limited mix cannot go faster than the client; the cache's
	// fill path only adds cost), and stationary (under drift the hot
	// ranks rotate, so slots sized from the stationary Zipf mass go
	// stale at the drift rate).
	switch {
	case wl.UpdateRatio > 0.25:
		d.Notes = append(d.Notes, fmt.Sprintf("no cache: update ratio %.2g > 0.25 would churn it with invalidations", wl.UpdateRatio))
	case wl.ZipfS <= 0:
		d.Notes = append(d.Notes, "no cache: uniform key popularity has no head worth caching")
	case pointFrac < 0.5:
		d.Notes = append(d.Notes, fmt.Sprintf("no cache: only %.2g of ops are point operations", pointFrac))
	case wl.ThinkNs > 0:
		d.Notes = append(d.Notes, "no cache: the mix is think-time paced — the client bounds the op rate and a cache cannot raise it")
	case wl.DriftPeriod > 0:
		d.Notes = append(d.Notes, "no cache: the working set drifts — a head sized from the stationary zipf mass decays as fast as it fills")
	default:
		z := xrand.NewZipf(wl.KeySpace, wl.ZipfS)
		mass := 0.0
		var c int64
		limit := wl.KeySpace
		if limit > int64(in.Size) {
			limit = int64(in.Size) // a cache larger than the structure is absurd
		}
		for c < limit && mass < hitTarget {
			c++
			mass += z.P(c)
		}
		if mass < hitTarget {
			d.Notes = append(d.Notes, fmt.Sprintf(
				"no cache: zipf %.2g is too shallow — even %d slots capture only %.2g of reads (target %.2g)",
				wl.ZipfS, limit, mass, hitTarget))
		} else {
			// 4x slack: the cache is direct-mapped, so hot ranks collide
			// with each other and with the long tail passing through;
			// 2x left measurable hits on the table in the grid cells.
			d.CacheSlots = pow2Ceil(4 * int(c))
			d.HitMass = mass
			d.CacheAdmission = combinatorAdmitTinyLFU
			reason := "tinylfu admission protects the head from one-touch keys"
			if wl.ScanRatio+wl.CursorRatio > 0.05 {
				d.CacheAdmission = combinatorAdmitWindow
				reason = "window admission keeps scan traffic from flushing the head"
			}
			d.Notes = append(d.Notes, fmt.Sprintf(
				"cache %d slots: hottest %d ranks carry %.2g of the zipf(%.2g) read mass (target %.2g), 4x for direct-map collisions; %s",
				d.CacheSlots, c, mass, wl.ZipfS, hitTarget, reason))
		}
	}

	// Streaming page size: a cursor page smaller than one refill chunk
	// per shard makes every pull overcollect, so floor the hint at
	// width * the per-part chunk floor.
	if wl.CursorRatio > 0 {
		d.PageLen = wl.PageLen
		if floor := int64(d.Width) * core.StreamMinChunk; d.PageLen < floor {
			d.PageLen = floor
			d.Notes = append(d.Notes, fmt.Sprintf(
				"page length %d = width %d x %d-key refill floor (smaller pages pull and discard most of each chunk)",
				d.PageLen, d.Width, core.StreamMinChunk))
		}
	}

	d.Spec = in.Leaf
	if d.Width > 1 {
		d.Spec = fmt.Sprintf("sharded(%d,%s)", d.Width, d.Spec)
	}
	if d.CacheSlots > 0 {
		d.Spec = fmt.Sprintf("readcache(%d,%s)", d.CacheSlots, d.Spec)
	}
	return d, nil
}

// Admission policy names, mirrored from internal/combinator (tuner
// cannot import it: combinator imports core and the dependency must
// stay one-way for csdsd, which links combinator but not the tuner).
// combinator.TestTunerAdmissionNamesMatch pins the mirror.
const (
	combinatorAdmitTinyLFU = "tinylfu"
	combinatorAdmitWindow  = "window"
)

// conflictAt evaluates the Section 6 conflict probability for leaf
// structure st sharded w ways: per-shard durations set the write-phase
// fraction (Equations 1-2), a thread is in a *given* shard's write
// phase fw/w of the time (uniform hashing), the per-shard collision
// term is the leaf's B over the per-shard size, and the shard events
// union. A skewed workload adds the width-independent Poisson floor
// (Equation 6): sharding never dilutes a single hot key.
func conflictAt(st sim.Structure, threads, size, w int, u, sumP2 float64) float64 {
	n := size / w
	if n < 2 {
		n = 2
	}
	parse := st.OverheadNs + st.Hops(n)*refHopNs*st.TraversalFactor
	write := st.WriteNs + 2*refHopNs*st.Locks
	fu := birthday.FUpdate(u, parse+write, parse)
	fw := fu * write / (parse + write)
	if st.SerializedUpdates {
		fw = write / (parse + write)
	}
	p := birthday.PConflict(threads, fw/float64(w), func(k int) float64 { return st.B(k, n) })
	p = 1 - math.Pow(1-p, float64(w))
	if sumP2 > 0 {
		if pz := birthday.PConflict(threads, fw, func(k int) float64 { return birthday.BNonUniform(k, sumP2) }); pz > p {
			p = pz
		}
	}
	return p
}

func pow2Ceil(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

func pow2Floor(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
