package tuner

import (
	"fmt"
	"strings"
	"testing"

	"csds/internal/core"
	"csds/internal/workload"

	_ "csds/internal/bst"
	_ "csds/internal/combinator"
	_ "csds/internal/hashtable"
	_ "csds/internal/list"
	_ "csds/internal/skiplist"
)

// TestDeriveListGridCell pins the derivation for the bench grid's
// auto-tuned cell: ycsb-b over a 2048-element list at 4 threads. The
// exact spec string is a grid-cell identity (benchsnap CheckGrid
// compares it against BENCH_baseline.json), so a change here must ship
// with a regenerated baseline.
func TestDeriveListGridCell(t *testing.T) {
	cfg, err := workload.ParseMix("ycsb-b")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Derive(Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048, Workload: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width < 8 {
		t.Fatalf("width %d: a 2048-element list wants deep sharding (traversal term)", d.Width)
	}
	if d.CacheSlots == 0 {
		t.Fatal("ycsb-b (5%% updates, zipf .99) must derive a cache layer")
	}
	if d.CacheAdmission != "tinylfu" {
		t.Fatalf("admission %q, want tinylfu for a point-skewed mix", d.CacheAdmission)
	}
	want := fmt.Sprintf("readcache(%d,sharded(%d,list/lazy))", d.CacheSlots, d.Width)
	if d.Spec != want {
		t.Fatalf("spec %q, want %q", d.Spec, want)
	}
	// The exact string is the CI grid cell's identity (bench_grid.sh,
	// BENCH_baseline.json, the csdsmodel walkthrough in the README):
	// changing the derivation means regenerating all of them.
	if const_ := "readcache(1024,sharded(32,list/lazy))"; d.Spec != const_ {
		t.Fatalf("spec %q, want the committed grid-cell identity %q", d.Spec, const_)
	}
	if _, err := core.ParseSpec(d.Spec); err != nil {
		t.Fatalf("derived spec does not parse: %v", err)
	}
	if _, err := core.Build(d.Spec, core.Options{ExpectedSize: 2048}); err != nil {
		t.Fatalf("derived spec does not build: %v", err)
	}
	if len(d.Notes) < 2 {
		t.Fatalf("notes %v: every derived parameter must be explained", d.Notes)
	}
}

// TestDeriveDeterministic: same inputs, same answer — the grid cell
// identity depends on it.
func TestDeriveDeterministic(t *testing.T) {
	cfg, _ := workload.ParseMix("ycsb-b")
	in := Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048, Workload: cfg}
	a, _ := Derive(in)
	b, _ := Derive(in)
	if a.Spec != b.Spec || a.Conflict != b.Conflict || a.HitMass != b.HitMass {
		t.Fatalf("Derive is not deterministic: %+v vs %+v", a, b)
	}
}

// TestDeriveCacheGates: each gate alone suppresses the cache layer.
func TestDeriveCacheGates(t *testing.T) {
	base := workload.Config{UpdateRatio: 0.05, ZipfS: 0.99}
	for name, mutate := range map[string]func(*workload.Config){
		"write-heavy": func(c *workload.Config) { c.UpdateRatio = 0.5 },
		"uniform":     func(c *workload.Config) { c.ZipfS = 0 },
		"scan-heavy":  func(c *workload.Config) { c.ScanRatio = 0.6 },
		"think-paced": func(c *workload.Config) { c.ThinkNs = 100_000 },
		"drifting":    func(c *workload.Config) { c.DriftPeriod = 0.25 },
	} {
		cfg := base
		mutate(&cfg)
		d, err := Derive(Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048, Workload: cfg})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.CacheSlots != 0 {
			t.Fatalf("%s: derived a %d-slot cache; the gate should have refused", name, d.CacheSlots)
		}
		if strings.Contains(d.Spec, "readcache") {
			t.Fatalf("%s: spec %q carries a cache layer", name, d.Spec)
		}
	}
	// The ungated baseline does cache, so the gates above are meaningful.
	d, err := Derive(Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048, Workload: base})
	if err != nil {
		t.Fatal(err)
	}
	if d.CacheSlots == 0 {
		t.Fatal("baseline mix derived no cache; the gate tests prove nothing")
	}
}

// TestDeriveScanHeavyStaysNarrow: when range ops dominate, the
// traversal term is suppressed — a scan visits every shard and pays the
// merge fan-in, so width comes from the conflict term alone (ycsb-e on
// a low-contention machine keeps the bare leaf).
func TestDeriveScanHeavyStaysNarrow(t *testing.T) {
	cfg, err := workload.ParseMix("ycsb-e")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Derive(Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048, Workload: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width != 1 {
		t.Fatalf("width %d: 95%% scans should suppress the traversal term; want 1", d.Width)
	}
	if d.Spec != "list/lazy" {
		t.Fatalf("spec %q, want the bare leaf", d.Spec)
	}
}

// TestDeriveHashStaysNarrow: constant-hop leaves have no traversal term,
// so width comes from conflicts alone and a low-contention scenario
// stays unsharded.
func TestDeriveHashStaysNarrow(t *testing.T) {
	d, err := Derive(Inputs{Leaf: "hashtable/lazy", Threads: 4, Size: 2048,
		Workload: workload.Config{UpdateRatio: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width != 1 {
		t.Fatalf("width %d: 4 threads on a 2048-bucket table conflict ~never; want 1", d.Width)
	}
	if d.Spec != "hashtable/lazy" {
		t.Fatalf("spec %q, want the bare leaf", d.Spec)
	}
}

// TestDeriveWidthMonotoneInThreads: more threads never derive a
// narrower composite.
func TestDeriveWidthMonotoneInThreads(t *testing.T) {
	prev := 0
	for _, threads := range []int{1, 4, 16, 64} {
		d, err := Derive(Inputs{Leaf: "hashtable/lazy", Threads: threads, Size: 256,
			Workload: workload.Config{UpdateRatio: 0.5}})
		if err != nil {
			t.Fatal(err)
		}
		if d.Width < prev {
			t.Fatalf("width shrank from %d to %d when threads grew to %d", prev, d.Width, threads)
		}
		prev = d.Width
	}
}

// TestDerivePageFloor: cursor mixes get a page hint floored at
// width * the streaming refill chunk.
func TestDerivePageFloor(t *testing.T) {
	d, err := Derive(Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048,
		Workload: workload.Config{UpdateRatio: 0.1, CursorRatio: 0.1, PageLen: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(d.Width) * core.StreamMinChunk; d.PageLen != want {
		t.Fatalf("page hint %d, want the %d floor (width %d)", d.PageLen, want, d.Width)
	}
	// A page already above the floor passes through untouched.
	d2, err := Derive(Inputs{Leaf: "list/lazy", Threads: 4, Size: 2048,
		Workload: workload.Config{UpdateRatio: 0.1, CursorRatio: 0.1, PageLen: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if d2.PageLen != 4096 {
		t.Fatalf("page hint %d clobbered an explicit 4096", d2.PageLen)
	}
}

// TestDeriveErrors: composites and unknown leaves are refused with
// actionable messages.
func TestDeriveErrors(t *testing.T) {
	if _, err := Derive(Inputs{Leaf: "sharded(8,list/lazy)", Threads: 4, Size: 2048}); err == nil {
		t.Fatal("composite leaf accepted")
	}
	if _, err := Derive(Inputs{Leaf: "nosuch/alg", Threads: 4, Size: 2048}); err == nil {
		t.Fatal("unknown leaf accepted")
	}
	if _, err := Derive(Inputs{Leaf: "list/lazy", Threads: 0, Size: 2048}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := Derive(Inputs{Leaf: "list/lazy", Threads: 4, Size: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
}

// TestParseComposite decomposes the grid's spec shapes.
func TestParseComposite(t *testing.T) {
	for _, tc := range []struct {
		spec  string
		width int
		cache int
		leaf  string
	}{
		{"list/lazy", 1, 0, "list"},
		{"sharded(8,list/lazy)", 8, 0, "list"},
		{"elastic(32,list/lazy)", 32, 0, "list"},
		{"readcache(1024,list/lazy)", 1, 1024, "list"},
		{"readcache(128,sharded(32,list/lazy))", 32, 128, "list"},
		{"sharded(4,striped(2,bst/tk))", 8, 0, "bst"},
	} {
		comp, err := ParseComposite(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if comp.Width != tc.width || comp.CacheSlots != tc.cache || comp.Leaf.Name != tc.leaf {
			t.Fatalf("%s: got width=%d cache=%d leaf=%s, want %d/%d/%s",
				tc.spec, comp.Width, comp.CacheSlots, comp.Leaf.Name, tc.width, tc.cache, tc.leaf)
		}
	}
	if _, err := ParseComposite("nosuch(4,list/lazy)"); err == nil {
		t.Fatal("unknown combinator accepted")
	}
	if _, err := ParseComposite("queue("); err == nil {
		t.Fatal("syntax error accepted")
	}
}

// TestPredictCellOrdering: the prediction must reproduce the grid's
// qualitative shape — a sharded list far outruns the plain list, and
// wider beats narrower for linear traversals.
func TestPredictCellOrdering(t *testing.T) {
	m := NeutralMachine(4)
	pred := func(alg string) float64 {
		p, err := PredictCell(Cell{Alg: alg, Threads: 4, Size: 2048, Updates: 0.1}, m)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		return p
	}
	plain := pred("list/lazy")
	s8 := pred("sharded(8,list/lazy)")
	s32 := pred("sharded(32,list/lazy)")
	if !(plain < s8 && s8 < s32) {
		t.Fatalf("prediction ordering broken: plain %.0f, sharded(8) %.0f, sharded(32) %.0f", plain, s8, s32)
	}
	if s8 < 3*plain {
		t.Fatalf("sharded(8) predicted only %.1fx the plain list; traversal scaling is lost", s8/plain)
	}
}

// TestPredictCellCacheHelps: a cache over a skewed read mix predicts
// more throughput than the same composite without it.
func TestPredictCellCacheHelps(t *testing.T) {
	m := NeutralMachine(4)
	base := Cell{Alg: "list/lazy", Threads: 4, Size: 2048, Updates: 0.1, Zipf: 0.9}
	cached := base
	cached.Alg = "readcache(1024,list/lazy)"
	p0, err := PredictCell(base, m)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := PredictCell(cached, m)
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p0 {
		t.Fatalf("cache predicted no gain: %.0f -> %.0f", p0, p1)
	}
}

// TestPredictPointFractionScaling: a scan tail shrinks the predicted
// point throughput proportionally.
func TestPredictPointFractionScaling(t *testing.T) {
	m := NeutralMachine(4)
	full := Cell{Alg: "list/lazy", Threads: 4, Size: 2048, Updates: 0.1}
	tailed := full
	tailed.ScanFrac, tailed.CursorFrac = 0.05, 0.05
	p0, _ := PredictCell(full, m)
	p1, _ := PredictCell(tailed, m)
	if got, want := p1/p0, 0.9; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("point fraction scaling %.4f, want %.4f", got, want)
	}
}

// TestValidateFitsScale: Validate on synthetic "measurements" that are
// an exact multiple of the prediction recovers the factor with zero
// residual.
func TestValidateFitsScale(t *testing.T) {
	cells := []Cell{
		{Alg: "list/lazy", Threads: 4, Size: 2048, Updates: 0.1},
		{Alg: "sharded(8,list/lazy)", Threads: 4, Size: 2048, Updates: 0.1},
		{Alg: "sharded(32,list/lazy)", Threads: 4, Size: 2048, Updates: 0.1},
	}
	keys := []string{"a", "b", "c"}
	const factor = 3.7
	live := make([]float64, len(cells))
	for i, c := range cells {
		p, err := PredictCell(c, NeutralMachine(c.Threads))
		if err != nil {
			t.Fatal(err)
		}
		live[i] = p * factor
	}
	v, err := Validate(cells, keys, live)
	if err != nil {
		t.Fatal(err)
	}
	if v.Scale < factor*0.999 || v.Scale > factor*1.001 {
		t.Fatalf("fitted scale %.4f, want %.4f", v.Scale, factor)
	}
	if v.MAEFrac > 1e-6 {
		t.Fatalf("MAE %.6f on exact-multiple data, want ~0", v.MAEFrac)
	}
	if len(v.Cells) != 3 {
		t.Fatalf("%d cells validated, want 3", len(v.Cells))
	}
}

// TestValidateSkipsUnpredictable: cells with unknown specs or zero
// measurements are skipped, not fatal.
func TestValidateSkipsUnpredictable(t *testing.T) {
	cells := []Cell{
		{Alg: "list/lazy", Threads: 4, Size: 2048, Updates: 0.1},
		{Alg: "nosuch/alg", Threads: 4, Size: 2048},
		{Alg: "list/lazy", Threads: 4, Size: 2048},
	}
	live := []float64{1e6, 1e6, 0}
	v, err := Validate(cells, []string{"a", "b", "c"}, live)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Cells) != 1 {
		t.Fatalf("%d cells validated, want 1 (two skipped)", len(v.Cells))
	}
	if _, err := Validate(nil, nil, nil); err == nil {
		t.Fatal("empty grid must error, not return a vacuous fit")
	}
}
