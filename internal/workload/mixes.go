// Named production-shaped workload mixes and the spec mini-grammar that
// selects them (`csdsbench -workload`).
//
// The YCSB core workloads (Cooper et al., SoCC'10) map onto this
// generator's vocabulary as follows. YCSB updates are key overwrites; our
// updates are an insert/remove pair at equal rates (the paper's §3.3
// stationarity trick), so an "x% update" YCSB mix becomes UpdateRatio x
// here. YCSB-D's "read latest" popularity has no stationary analogue in a
// fixed key space, so it is approximated by working-set drift: the Zipf
// head moves continuously through the key space and the freshest keys are
// the hottest. YCSB-F's read-modify-write is decomposed into its two
// primitive halves (a read plus a write), so the 50/50 read/RMW mix
// becomes 2/3 reads + 1/3 writes. YCSB-E's 95% short scans map onto
// ScanRatio with the standard mean length of 50.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Mix is a catalog entry: a named base Config (sizes left to the caller)
// plus a one-line description used by -list and the docs tables.
type Mix struct {
	Name string
	Desc string
	Cfg  Config
}

// mixes is the catalog. Sizes (Size/KeySpace) are zero: the caller's
// -size governs; everything else is the mix's identity.
var mixes = []Mix{
	{"paper", "the paper's §3.3 mix: 20% updates (half inserts, half removes), uniform keys",
		Config{UpdateRatio: 0.2}},
	{"ycsb-a", "update heavy: 50% reads / 50% updates, Zipf 0.99 (session stores)",
		Config{UpdateRatio: 0.5, ZipfS: 0.99}},
	{"ycsb-b", "read mostly: 95% reads / 5% updates, Zipf 0.99 (photo tagging)",
		Config{UpdateRatio: 0.05, ZipfS: 0.99}},
	{"ycsb-c", "read only, Zipf 0.99 (user-profile caches)",
		Config{UpdateRatio: 0, ZipfS: 0.99}},
	{"ycsb-d", "read latest: 95% reads / 5% updates with the working set drifting once across the key space (news feeds)",
		Config{UpdateRatio: 0.05, ZipfS: 0.99, DriftPeriod: 1}},
	{"ycsb-e", "short ranges: 95% scans (mean length 50) / 5% updates, Zipf 0.99 (threaded conversations)",
		Config{UpdateRatio: 0.05, ScanRatio: 0.95, ScanLen: 50, ZipfS: 0.99}},
	{"ycsb-f", "read-modify-write decomposed into primitive halves: 2/3 reads + 1/3 writes, Zipf 0.99 (user records)",
		Config{UpdateRatio: 1.0 / 3, ZipfS: 0.99}},
	{"flash", "hot-key flash crowds: Zipf 0.8 base with 90% of draws collapsing onto 1/64 of the key space during 40% of each quarter-run cycle (breaking news)",
		Config{UpdateRatio: 0.1, ZipfS: 0.8, FlashPeriod: 0.25, FlashDuty: 0.4, FlashFrac: 1.0 / 64, FlashBoost: 0.9}},
	{"diurnal", "diurnal ramp: Zipf 0.8, 10% updates, think time on a raised-cosine day curve peaking at 200µs mid-run (overnight trough)",
		Config{UpdateRatio: 0.1, ZipfS: 0.8, ThinkNs: 200_000}},
	{"drift", "working-set drift: Zipf 0.99, 10% updates, popularity rotating through the key space four times per run (trending topics)",
		Config{UpdateRatio: 0.1, ZipfS: 0.99, DriftPeriod: 0.25}},
}

// Mixes returns the catalog sorted by name.
func Mixes() []Mix {
	out := append([]Mix(nil), mixes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the catalog's mix names, sorted.
func Names() []string {
	names := make([]string, 0, len(mixes))
	for _, m := range mixes {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}

// modSetters maps workload-spec modifier keys to field setters. Fractions
// are validated to [0, 1]; lengths and durations must be positive. The
// keys deliberately mirror the csdsbench flag names where one exists.
var modSetters = map[string]func(c *Config, v string) error{
	"updates":      fracSetter(func(c *Config, f float64) { c.UpdateRatio = f }),
	"zipf":         nonNegSetter(func(c *Config, f float64) { c.ZipfS = f }),
	"scan-frac":    fracSetter(func(c *Config, f float64) { c.ScanRatio = f }),
	"cursor-frac":  fracSetter(func(c *Config, f float64) { c.CursorRatio = f }),
	"batch-frac":   fracSetter(func(c *Config, f float64) { c.BatchRatio = f }),
	"scan-len":     lenSetter(func(c *Config, n int64) { c.ScanLen = n }),
	"page-len":     lenSetter(func(c *Config, n int64) { c.PageLen = n }),
	"batch-len":    lenSetter(func(c *Config, n int64) { c.BatchLen = n }),
	"flash-period": fracSetter(func(c *Config, f float64) { c.FlashPeriod = f }),
	"flash-duty":   fracSetter(func(c *Config, f float64) { c.FlashDuty = f }),
	"flash-frac":   fracSetter(func(c *Config, f float64) { c.FlashFrac = f }),
	"flash-boost":  fracSetter(func(c *Config, f float64) { c.FlashBoost = f }),
	"drift-period": fracSetter(func(c *Config, f float64) { c.DriftPeriod = f }),
	"think-ns":     lenSetter(func(c *Config, n int64) { c.ThinkNs = n }),
}

func fracSetter(set func(*Config, float64)) func(*Config, string) error {
	return func(c *Config, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 || f != f {
			return fmt.Errorf("want a fraction in [0, 1], got %q", v)
		}
		set(c, f)
		return nil
	}
}

func nonNegSetter(set func(*Config, float64)) func(*Config, string) error {
	return func(c *Config, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 64 || f != f {
			return fmt.Errorf("want a number in [0, 64], got %q", v)
		}
		set(c, f)
		return nil
	}
}

func lenSetter(set func(*Config, int64)) func(*Config, string) error {
	return func(c *Config, v string) error {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 || n > 1<<40 {
			return fmt.Errorf("want a positive integer, got %q", v)
		}
		set(c, n)
		return nil
	}
}

// modKeys returns the modifier-key vocabulary, sorted (for error hints).
func modKeys() []string {
	keys := make([]string, 0, len(modSetters))
	for k := range modSetters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ParseMix parses a workload spec:
//
//	spec := name ( ':' key '=' value )*
//
// name selects a catalog mix and each key=value modifier overrides one
// field — e.g. "ycsb-b:updates=0.1:drift-period=0.5". The separator is
// ':' (never ','), so specs survive verbatim as one CSV field. The
// returned Config carries the base mix with modifiers applied, sizes
// unset (callers supply Size), and Mix set to the normalized spec.
func ParseMix(spec string) (Config, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	var cfg Config
	found := false
	for _, m := range mixes {
		if m.Name == name {
			cfg, found = m.Cfg, true
			break
		}
	}
	if !found {
		return Config{}, fmt.Errorf("unknown workload mix %q (have %s)", name, strings.Join(Names(), ", "))
	}
	for _, mod := range parts[1:] {
		k, v, ok := strings.Cut(mod, "=")
		if !ok || k == "" {
			return Config{}, fmt.Errorf("bad workload modifier %q: want key=value", mod)
		}
		set, ok := modSetters[k]
		if !ok {
			return Config{}, fmt.Errorf("unknown workload modifier %q (have %s)", k, strings.Join(modKeys(), ", "))
		}
		if err := set(&cfg, v); err != nil {
			return Config{}, fmt.Errorf("workload modifier %s: %v", k, err)
		}
	}
	cfg.Mix = spec
	return cfg, nil
}
