package workload

import (
	"math"
	"sort"
	"strings"
	"testing"

	"csds/internal/core"
	"csds/internal/xrand"
)

// TestNamedMixChiSquare runs the 8-way goodness-of-fit test over every
// catalog mix, with the expected fractions hand-derived from each mix's
// published definition (not recomputed from the Config, so threshold
// arithmetic bugs can't cancel out).
func TestNamedMixChiSquare(t *testing.T) {
	const draws = 200000
	// Indexed by Op: get, put, remove, scan, cursor, mget, mput, mremove.
	want := map[string][8]float64{
		"paper":   {0.8, 0.1, 0.1, 0, 0, 0, 0, 0},
		"ycsb-a":  {0.5, 0.25, 0.25, 0, 0, 0, 0, 0},
		"ycsb-b":  {0.95, 0.025, 0.025, 0, 0, 0, 0, 0},
		"ycsb-c":  {1, 0, 0, 0, 0, 0, 0, 0},
		"ycsb-d":  {0.95, 0.025, 0.025, 0, 0, 0, 0, 0},
		"ycsb-e":  {0, 0.025, 0.025, 0.95, 0, 0, 0, 0},
		"ycsb-f":  {2.0 / 3, 1.0 / 6, 1.0 / 6, 0, 0, 0, 0, 0},
		"flash":   {0.9, 0.05, 0.05, 0, 0, 0, 0, 0},
		"diurnal": {0.9, 0.05, 0.05, 0, 0, 0, 0, 0},
		"drift":   {0.9, 0.05, 0.05, 0, 0, 0, 0, 0},
	}
	for i, m := range Mixes() {
		t.Run(m.Name, func(t *testing.T) {
			exp, ok := want[m.Name]
			if !ok {
				t.Fatalf("mix %q has no expected fractions: extend this test with the new catalog entry", m.Name)
			}
			cfg := m.Cfg
			cfg.Size = 1024
			g := NewGenerator(cfg)
			if chi2 := chiSquareMix(t, g, uint64(2000+i), draws, exp); chi2 > chi2Crit7 {
				t.Fatalf("chi-square %.2f exceeds %.2f: drawn mix inconsistent with %v", chi2, chi2Crit7, exp)
			}
		})
	}
}

func TestMixCatalogSane(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, m := range Mixes() {
		if m.Name == "" || m.Desc == "" {
			t.Fatalf("catalog entry %+v missing name or description", m)
		}
		if seen[m.Name] {
			t.Fatalf("duplicate mix name %q", m.Name)
		}
		seen[m.Name] = true
		if m.Cfg.Size != 0 || m.Cfg.KeySpace != 0 {
			t.Fatalf("mix %q pins a size: sizes belong to the caller", m.Name)
		}
		if strings.ContainsAny(m.Name, ",:= ") {
			t.Fatalf("mix name %q collides with the spec grammar or CSV", m.Name)
		}
	}
	for _, required := range []string{"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d", "ycsb-e", "ycsb-f", "flash", "diurnal", "drift", "paper"} {
		if !seen[required] {
			t.Fatalf("catalog missing required mix %q", required)
		}
	}
}

func TestParseMix(t *testing.T) {
	cfg, err := ParseMix("ycsb-b")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UpdateRatio != 0.05 || cfg.ZipfS != 0.99 || cfg.Mix != "ycsb-b" {
		t.Fatalf("ycsb-b parsed wrong: %+v", cfg)
	}

	cfg, err = ParseMix("ycsb-b:updates=0.2:drift-period=0.5:scan-len=100")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UpdateRatio != 0.2 || cfg.DriftPeriod != 0.5 || cfg.ScanLen != 100 || cfg.ZipfS != 0.99 {
		t.Fatalf("modifiers not applied: %+v", cfg)
	}

	for _, bad := range []string{
		"",                      // empty name
		"ycsb-z",                // unknown mix
		"ycsb-a:bogus=1",        // unknown modifier
		"ycsb-a:updates",        // no '='
		"ycsb-a:updates=heavy",  // not a number
		"ycsb-a:updates=1.5",    // fraction out of range
		"ycsb-a:updates=-0.1",   // negative fraction
		"ycsb-a:scan-len=0",     // non-positive length
		"ycsb-a:zipf=NaN",       // NaN exponent
		"ycsb-a:think-ns=-5",    // negative duration
		"flash:flash-duty=2",    // duty out of range
		"drift:drift-period=-1", // negative period
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}

	// Error hints name the vocabulary so operators can self-serve.
	if _, err := ParseMix("nope"); err == nil || !strings.Contains(err.Error(), "ycsb-a") {
		t.Fatalf("unknown-mix error lacks catalog hint: %v", err)
	}
	if _, err := ParseMix("paper:nope=1"); err == nil || !strings.Contains(err.Error(), "drift-period") {
		t.Fatalf("unknown-modifier error lacks key hint: %v", err)
	}
}

// TestKeyAtStaticEquivalence pins the no-dynamics contract: KeyAt consumes
// exactly the RNG stream Key does, so switching the harness to the phased
// form changes nothing for static workloads (including every baseline
// bench cell).
func TestKeyAtStaticEquivalence(t *testing.T) {
	for _, s := range []float64{0, 0.99} {
		g := NewGenerator(Config{Size: 1024, ZipfS: s})
		a, b := xrand.New(42), xrand.New(42)
		for i := 0; i < 20000; i++ {
			phase := float64(i%97) / 97
			if k1, k2 := g.Key(a), g.KeyAt(b, phase); k1 != k2 {
				t.Fatalf("draw %d (s=%v): Key %d != KeyAt %d", i, s, k1, k2)
			}
		}
	}
}

// TestFlashCrowdConcentrates checks the duty-cycle windows: inside a
// flash, ~FlashBoost of draws land in the hot set; outside, the static
// distribution is untouched.
func TestFlashCrowdConcentrates(t *testing.T) {
	g := NewGenerator(Config{
		Size: 4096, FlashPeriod: 0.5, FlashDuty: 0.5, FlashFrac: 1.0 / 64, FlashBoost: 0.9,
	})
	hotN := core.Key(8192 / 64) // uniform base: hot set = lowest keys
	frac := func(phase float64, seed uint64) float64 {
		rng := xrand.New(seed)
		hot := 0
		const draws = 100000
		for i := 0; i < draws; i++ {
			if g.KeyAt(rng, phase) <= hotN {
				hot++
			}
		}
		return float64(hot) / draws
	}
	// Phase 0.1 → cycle position 0.2 < duty 0.5: active. Expect
	// 0.9 + 0.1/64 ≈ 0.902 of draws in the hot 1/64th.
	if f := frac(0.1, 21); math.Abs(f-0.9016) > 0.01 {
		t.Fatalf("flash window hot fraction %.4f, want ~0.90", f)
	}
	// Phase 0.3 → cycle position 0.6: idle. Expect the uniform 1/64.
	if f := frac(0.3, 22); math.Abs(f-1.0/64) > 0.005 {
		t.Fatalf("idle hot fraction %.4f, want ~%.4f", f, 1.0/64)
	}
	if !g.Dynamic() {
		t.Fatal("flash config not Dynamic")
	}
}

// TestDriftRotatesWorkingSet checks that the hottest key at phase 0.5 is
// the phase-0 hottest key rotated half way around the key space.
func TestDriftRotatesWorkingSet(t *testing.T) {
	g := NewGenerator(Config{Size: 2048, ZipfS: 0.99, DriftPeriod: 1})
	const ks = 4096
	top := func(phase float64, seed uint64) core.Key {
		rng := xrand.New(seed)
		counts := map[core.Key]int{}
		for i := 0; i < 200000; i++ {
			counts[g.KeyAt(rng, phase)]++
		}
		var best core.Key
		max := 0
		for k, c := range counts {
			if c > max {
				best, max = k, c
			}
		}
		return best
	}
	t0, t5 := top(0, 31), top(0.5, 31)
	wantT5 := core.Key((int64(t0)-1+ks/2)%ks) + 1
	if t5 != wantT5 {
		t.Fatalf("phase-0.5 hottest key %d, want %d (phase-0 hottest %d rotated by %d)", t5, wantT5, t0, ks/2)
	}
	if !g.Dynamic() {
		t.Fatal("drift config not Dynamic")
	}
}

func TestThinkNsCurve(t *testing.T) {
	g := NewGenerator(Config{Size: 128, ThinkNs: 1000})
	if got := g.ThinkNsAt(0); got != 0 {
		t.Fatalf("think time at phase 0 = %d, want 0", got)
	}
	if got := g.ThinkNsAt(0.5); got != 1000 {
		t.Fatalf("think time at phase 0.5 = %d, want the full 1000", got)
	}
	if a, b := g.ThinkNsAt(0.1), g.ThinkNsAt(0.4); a >= b {
		t.Fatalf("curve not rising toward midday: ThinkNsAt(0.1)=%d >= ThinkNsAt(0.4)=%d", a, b)
	}
	if a, b := g.ThinkNsAt(0.25), g.ThinkNsAt(0.75); a-b > 1 || b-a > 1 {
		t.Fatalf("curve not symmetric: %d vs %d", a, b)
	}
	if !g.Dynamic() {
		t.Fatal("diurnal config not Dynamic")
	}
	if NewGenerator(Config{Size: 128, ZipfS: 0.99}).Dynamic() {
		t.Fatal("static config claims Dynamic")
	}
}

func TestDynamicsDefaults(t *testing.T) {
	c := Config{Size: 128, FlashPeriod: 0.25}.WithDefaults()
	if c.FlashDuty != 0.5 || c.FlashFrac != 1.0/64 || c.FlashBoost != 0.9 {
		t.Fatalf("flash defaults not filled: %+v", c)
	}
	// Without a period, stray flash fields are cleared.
	c2 := Config{Size: 128, FlashDuty: 0.3, FlashBoost: 0.5}.WithDefaults()
	if c2.FlashDuty != 0 || c2.FlashBoost != 0 {
		t.Fatalf("flash fields not cleared without a period: %+v", c2)
	}
	c3 := Config{Size: 128, DriftPeriod: -3, ThinkNs: -1, FlashPeriod: math.NaN()}.WithDefaults()
	if c3.DriftPeriod != 0 || c3.ThinkNs != 0 || c3.FlashPeriod != 0 {
		t.Fatalf("negative/NaN dynamics not zeroed: %+v", c3)
	}
}

// FuzzWorkloadSpec fuzzes the workload-spec parser: it must never panic,
// and every accepted spec must yield a config the generator can run —
// normalized fractions summing within bounds and in-range key draws.
func FuzzWorkloadSpec(f *testing.F) {
	for _, seed := range []string{
		"ycsb-a",
		"ycsb-b:updates=0.2",
		"ycsb-e:scan-len=100:scan-frac=0.5",
		"flash:flash-boost=0.5:flash-duty=0.25:flash-frac=0.01",
		"drift:drift-period=0.125",
		"diurnal:think-ns=1000",
		"paper:zipf=0.8:batch-frac=0.3:batch-len=32",
		"ycsb-d:cursor-frac=0.1:page-len=8",
		"nope", "ycsb-a:", "ycsb-a:updates=", "a:b=c:d=e", ":::", "paper:updates=1e308",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseMix(spec)
		if err != nil {
			return
		}
		if cfg.Mix != spec {
			t.Fatalf("accepted spec %q but Mix field is %q", spec, cfg.Mix)
		}
		cfg.Size = 64
		n := cfg.WithDefaults()
		if sum := n.CursorRatio + n.ScanRatio + n.BatchRatio + n.UpdateRatio; sum > 1+1e-9 {
			t.Fatalf("normalized fractions sum to %v: %+v", sum, n)
		}
		g := NewGenerator(cfg)
		rng := xrand.New(99)
		for i := 0; i < 64; i++ {
			phase := float64(i) / 64
			if k := g.KeyAt(rng, phase); k < 1 || k > core.Key(g.Config().KeySpace) {
				t.Fatalf("spec %q drew key %d outside [1, %d] at phase %v", spec, k, g.Config().KeySpace, phase)
			}
			if tn := g.ThinkNsAt(phase); tn < 0 || tn > g.Config().ThinkNs {
				t.Fatalf("spec %q think time %d outside [0, %d]", spec, tn, g.Config().ThinkNs)
			}
			g.NextOp(rng)
		}
	})
}
