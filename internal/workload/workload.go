// Package workload generates the paper's benchmark workloads (§3.3): a
// given structure size, a key space twice that size (so equal insert and
// remove rates keep the size stationary), an update ratio split evenly
// between inserts and removes, and uniform or Zipfian key popularity
// (§5.2 uses s = 0.8).
package workload

import (
	"csds/internal/core"
	"csds/internal/xrand"
)

// Op is an operation kind drawn from the mix.
type Op int

// Operation kinds.
const (
	OpGet Op = iota
	OpPut
	OpRemove
)

// Config describes a workload.
type Config struct {
	// Size is the steady-state structure size (elements).
	Size int
	// KeySpace is the number of distinct keys; 0 = 2*Size (the paper's
	// setting).
	KeySpace int64
	// UpdateRatio is the fraction of operations that are updates (half
	// inserts, half removes).
	UpdateRatio float64
	// ZipfS > 0 selects a Zipfian popularity with that exponent; 0 keeps
	// the uniform distribution.
	ZipfS float64
}

// WithDefaults fills derived fields.
func (c Config) WithDefaults() Config {
	if c.Size <= 0 {
		c.Size = 1024
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 2 * int64(c.Size)
	}
	return c
}

// Generator draws operations for one workload. The Zipf table and rank
// permutation are immutable and shared; each worker samples with its own
// RNG.
type Generator struct {
	cfg  Config
	zipf *xrand.Zipf
	perm []int64 // rank -> key (decorrelates popularity from key order)
}

// NewGenerator prepares the (possibly shared) sampling tables.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.WithDefaults()
	g := &Generator{cfg: cfg}
	if cfg.ZipfS > 0 {
		g.zipf = xrand.NewZipf(cfg.KeySpace, cfg.ZipfS)
		g.perm = xrand.Perm(cfg.KeySpace, xrand.New(0xC0FFEE))
	}
	return g
}

// Config returns the normalized configuration.
func (g *Generator) Config() Config { return g.cfg }

// Key draws a key according to the popularity distribution. Keys start at
// 1 so the sentinel KeyMin is never produced.
func (g *Generator) Key(rng *xrand.Rng) core.Key {
	if g.zipf == nil {
		return core.Key(1 + rng.Int63n(g.cfg.KeySpace))
	}
	return core.Key(1 + g.perm[g.zipf.Rank(rng)])
}

// NextOp draws the operation kind: updates with probability UpdateRatio,
// split evenly between puts and removes.
func (g *Generator) NextOp(rng *xrand.Rng) Op {
	if !rng.Bool(g.cfg.UpdateRatio) {
		return OpGet
	}
	if rng.Bool(0.5) {
		return OpPut
	}
	return OpRemove
}

// Fill populates s to the expected steady-state size: every other key of
// the key space, mirroring the 50% occupancy the paper's key-space sizing
// produces. Returns the number inserted.
func (g *Generator) Fill(c *core.Ctx, s core.Set) int {
	n := 0
	for k := int64(1); k <= g.cfg.KeySpace && n < g.cfg.Size; k += 2 {
		if s.Put(c, core.Key(k), core.Value(k)) {
			n++
		}
	}
	return n
}

// SumPSquared exposes the collision mass of the key distribution for the
// birthday model (1/KeySpace for uniform).
func (g *Generator) SumPSquared() float64 {
	if g.zipf == nil {
		return 1 / float64(g.cfg.KeySpace)
	}
	return g.zipf.SumPSquared()
}
