// Package workload generates the paper's benchmark workloads (§3.3): a
// given structure size, a key space twice that size (so equal insert and
// remove rates keep the size stationary), an update ratio split evenly
// between inserts and removes, and uniform or Zipfian key popularity
// (§5.2 uses s = 0.8).
//
// Beyond the paper's point-op mixes, a workload can dedicate a fraction
// of operations to range scans (ScanRatio), with a configurable
// scan-length distribution — the scan-heavy scenarios (ranked feeds,
// prefix queries, windowed aggregation) the Scanner extension serves.
package workload

import (
	"math"

	"csds/internal/core"
	"csds/internal/xrand"
)

// Op is an operation kind drawn from the mix.
type Op int

// Operation kinds.
const (
	OpGet Op = iota
	OpPut
	OpRemove
	OpScan
	// OpCursorScan is a paginated range scan: the window is drawn like a
	// one-shot scan's, then iterated page by page through a resumable
	// cursor with page sizes drawn from the page-size distribution.
	OpCursorScan
	// OpMultiGet is a batched lookup: BatchLen keys drawn from the key
	// popularity distribution, applied through one Batcher.MultiGet.
	OpMultiGet
	// OpMultiPut is a batched insert (Batcher.MultiPut).
	OpMultiPut
	// OpMultiRemove is a batched remove (Batcher.MultiRemove).
	OpMultiRemove
)

// Scan-length distributions.
const (
	// ScanLenUniform draws lengths uniformly from [1, 2*ScanLen-1]
	// (mean ScanLen). The default.
	ScanLenUniform = "uniform"
	// ScanLenFixed uses exactly ScanLen every time.
	ScanLenFixed = "fixed"
	// ScanLenGeometric draws geometrically with mean ScanLen (long tail:
	// mostly short scans, occasional span-sized ones).
	ScanLenGeometric = "geometric"
)

// Config describes a workload.
type Config struct {
	// Size is the steady-state structure size (elements).
	Size int
	// KeySpace is the number of distinct keys; 0 = 2*Size (the paper's
	// setting).
	KeySpace int64
	// UpdateRatio is the fraction of operations that are updates (half
	// inserts, half removes).
	UpdateRatio float64
	// ZipfS > 0 selects a Zipfian popularity with that exponent; 0 keeps
	// the uniform distribution.
	ZipfS float64

	// ScanRatio is the fraction of operations that are range scans.
	// The fractions are absolute — ScanRatio scans, UpdateRatio updates,
	// the remainder gets — so adding scans never skews the Put/Remove
	// split. ScanRatio + UpdateRatio must not exceed 1 (WithDefaults
	// clamps UpdateRatio down, scans win ties).
	ScanRatio float64
	// ScanLen is the mean scan length in keys of the key space; 0
	// defaults to 64 (a feed-page worth of keys).
	ScanLen int64
	// ScanLenDist selects the scan-length distribution: ScanLenUniform
	// (default), ScanLenFixed or ScanLenGeometric.
	ScanLenDist string

	// CursorRatio is the fraction of operations that are paginated
	// (cursor) scans. Like ScanRatio the fraction is absolute; cursors
	// win ties over scans, scans over updates (WithDefaults clamps).
	CursorRatio float64
	// PageLen is the mean page size (keys delivered per cursor batch);
	// 0 defaults to 16 (a screenful of a feed page).
	PageLen int64
	// PageLenDist selects the page-size distribution: the same choices
	// as ScanLenDist (uniform default, fixed, geometric).
	PageLenDist string

	// BatchRatio is the fraction of operations that are batched
	// (Batcher) operations. Like the scan fractions it is absolute, and
	// the batch segment is itself split by UpdateRatio — a BatchRatio
	// batch mix has the same read/insert/remove proportions as the
	// point mix, so batching never skews the update rate. Ties clamp in
	// the order cursors > scans > batches > point updates.
	BatchRatio float64
	// BatchLen is the mean batch length in keys; 0 defaults to 64.
	BatchLen int64
	// BatchLenDist selects the batch-length distribution: the same
	// choices as ScanLenDist (uniform default, fixed, geometric).
	BatchLenDist string

	// --- Dynamics: phase-based traffic shaping. A phase is the elapsed
	// fraction of the measurement window in [0, 1); the harness samples
	// it coarsely (every ~64 ops) so the hot loop stays clock-free, and
	// passes it to KeyAt / ScanRangeAt / ThinkNsAt. With none of these
	// fields set the At methods are bit-identical to the static draws.

	// FlashPeriod > 0 enables hot-key flash crowds: the run divides into
	// cycles of FlashPeriod phase each, and during the first FlashDuty
	// of every cycle a FlashBoost fraction of key draws is redirected
	// into a hot set of FlashFrac*KeySpace keys (the hottest ranks under
	// Zipf, the lowest keys under uniform).
	FlashPeriod float64
	// FlashDuty is the active fraction of each flash cycle; 0 defaults
	// to 0.5 when FlashPeriod is set.
	FlashDuty float64
	// FlashFrac sizes the hot set as a fraction of the key space; 0
	// defaults to 1/64 when FlashPeriod is set.
	FlashFrac float64
	// FlashBoost is the fraction of draws redirected into the hot set
	// while a flash is active; 0 defaults to 0.9 when FlashPeriod is set.
	FlashBoost float64

	// DriftPeriod > 0 enables working-set drift: the popularity-to-key
	// mapping rotates through the whole key space once per DriftPeriod
	// of the run, so the hot working set moves continuously (the
	// read-latest pattern of YCSB-D, approximated in a closed loop).
	DriftPeriod float64

	// ThinkNs > 0 enables a diurnal ramp: each operation is followed by
	// a think time on a raised-cosine day curve — zero at phase 0,
	// peaking at ThinkNs at phase 0.5 — the closed-loop equivalent of an
	// offered-load trough in the middle of the window.
	ThinkNs int64

	// Mix names the catalog mix this config was derived from (set by
	// ParseMix, informational): it becomes the workload axis of the
	// bench CSV. Empty for hand-assembled configs.
	Mix string
}

// WithDefaults fills derived fields.
func (c Config) WithDefaults() Config {
	if c.Size <= 0 {
		c.Size = 1024
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 2 * int64(c.Size)
	}
	if c.CursorRatio < 0 {
		c.CursorRatio = 0
	}
	if c.CursorRatio > 1 {
		c.CursorRatio = 1
	}
	if c.ScanRatio < 0 {
		c.ScanRatio = 0
	}
	if c.ScanRatio > 1 {
		c.ScanRatio = 1
	}
	if c.CursorRatio+c.ScanRatio > 1 {
		c.ScanRatio = 1 - c.CursorRatio
	}
	if c.BatchRatio < 0 {
		c.BatchRatio = 0
	}
	if c.BatchRatio > 1 {
		c.BatchRatio = 1
	}
	if c.CursorRatio+c.ScanRatio+c.BatchRatio > 1 {
		c.BatchRatio = 1 - c.CursorRatio - c.ScanRatio
	}
	if c.UpdateRatio < 0 {
		c.UpdateRatio = 0
	}
	if c.UpdateRatio > 1 {
		c.UpdateRatio = 1
	}
	if c.CursorRatio+c.ScanRatio+c.BatchRatio+c.UpdateRatio > 1 {
		c.UpdateRatio = 1 - c.CursorRatio - c.ScanRatio - c.BatchRatio
	}
	if c.ScanLen <= 0 {
		c.ScanLen = 64
	}
	if c.ScanLen > c.KeySpace {
		c.ScanLen = c.KeySpace
	}
	if c.ScanLenDist == "" {
		c.ScanLenDist = ScanLenUniform
	}
	if c.PageLen <= 0 {
		c.PageLen = 16
	}
	if c.PageLenDist == "" {
		c.PageLenDist = ScanLenUniform
	}
	if c.BatchLen <= 0 {
		c.BatchLen = 64
	}
	if c.BatchLenDist == "" {
		c.BatchLenDist = ScanLenUniform
	}
	if c.FlashPeriod < 0 || math.IsNaN(c.FlashPeriod) || math.IsInf(c.FlashPeriod, 0) {
		c.FlashPeriod = 0
	}
	if c.FlashPeriod > 1 {
		c.FlashPeriod = 1
	}
	if c.FlashPeriod > 0 {
		if c.FlashDuty <= 0 || c.FlashDuty > 1 || math.IsNaN(c.FlashDuty) {
			c.FlashDuty = 0.5
		}
		if c.FlashFrac <= 0 || c.FlashFrac > 1 || math.IsNaN(c.FlashFrac) {
			c.FlashFrac = 1.0 / 64
		}
		if c.FlashBoost <= 0 || c.FlashBoost > 1 || math.IsNaN(c.FlashBoost) {
			c.FlashBoost = 0.9
		}
	} else {
		c.FlashDuty, c.FlashFrac, c.FlashBoost = 0, 0, 0
	}
	if c.DriftPeriod < 0 || math.IsNaN(c.DriftPeriod) || math.IsInf(c.DriftPeriod, 0) {
		c.DriftPeriod = 0
	}
	if c.DriftPeriod > 1 {
		c.DriftPeriod = 1
	}
	if c.ThinkNs < 0 {
		c.ThinkNs = 0
	}
	return c
}

// Generator draws operations for one workload. The Zipf table and rank
// permutation are immutable and shared; each worker samples with its own
// RNG.
type Generator struct {
	cfg  Config
	zipf *xrand.Zipf
	perm []int64 // rank -> key (decorrelates popularity from key order)

	// Cumulative op-mix thresholds over one uniform draw in [0, 1):
	// [0, pCursor) cursor scan, [pCursor, pScan) scan, [pScan,
	// pBatchPut) batched put, [pBatchPut, pBatchRemove) batched remove,
	// [pBatchRemove, pBatch) batched get, [pBatch, pPut) put, [pPut,
	// pRemove) remove, and [pRemove, 1) get. A single draw against
	// precomputed boundaries keeps every category's probability exactly
	// its configured fraction — stacking conditional coin flips (the
	// old two-way update split) is where mix skew creeps in when
	// categories are added. The batch segment is split by UpdateRatio
	// exactly like the point segment, so batch traffic mirrors the
	// point mix's read/write proportions.
	pCursor, pScan, pBatchPut, pBatchRemove, pBatch, pPut, pRemove float64

	// hotN is the hot-set size in keys when flash crowds are configured
	// (FlashFrac * KeySpace, at least 1); 0 otherwise.
	hotN int64
}

// NewGenerator prepares the (possibly shared) sampling tables.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.WithDefaults()
	g := &Generator{cfg: cfg}
	g.pCursor = cfg.CursorRatio
	g.pScan = g.pCursor + cfg.ScanRatio
	g.pBatchPut = g.pScan + cfg.BatchRatio*cfg.UpdateRatio/2
	g.pBatchRemove = g.pScan + cfg.BatchRatio*cfg.UpdateRatio
	g.pBatch = g.pScan + cfg.BatchRatio
	g.pPut = g.pBatch + cfg.UpdateRatio/2
	g.pRemove = g.pBatch + cfg.UpdateRatio
	if cfg.ZipfS > 0 {
		g.zipf = xrand.NewZipf(cfg.KeySpace, cfg.ZipfS)
		g.perm = xrand.Perm(cfg.KeySpace, xrand.New(0xC0FFEE))
	}
	if cfg.FlashPeriod > 0 {
		g.hotN = int64(cfg.FlashFrac * float64(cfg.KeySpace))
		if g.hotN < 1 {
			g.hotN = 1
		}
		if g.hotN > cfg.KeySpace {
			g.hotN = cfg.KeySpace
		}
	}
	return g
}

// Config returns the normalized configuration.
func (g *Generator) Config() Config { return g.cfg }

// Key draws a key according to the popularity distribution. Keys start at
// 1 so the sentinel KeyMin is never produced.
func (g *Generator) Key(rng *xrand.Rng) core.Key {
	if g.zipf == nil {
		return core.Key(1 + rng.Int63n(g.cfg.KeySpace))
	}
	return core.Key(1 + g.perm[g.zipf.Rank(rng)])
}

// Dynamic reports whether any phase-dependent dynamics (flash crowds,
// drift, diurnal think time) are configured. Callers that hold phase at 0
// when this is false never pay a clock read: KeyAt(rng, 0) is then
// bit-identical to Key(rng).
func (g *Generator) Dynamic() bool {
	return g.cfg.FlashPeriod > 0 || g.cfg.DriftPeriod > 0 || g.cfg.ThinkNs > 0
}

// flashActive reports whether the given phase falls inside a flash
// window: the first FlashDuty of each FlashPeriod-long cycle.
func (g *Generator) flashActive(phase float64) bool {
	if g.cfg.FlashPeriod <= 0 {
		return false
	}
	pos := phase / g.cfg.FlashPeriod
	return pos-math.Floor(pos) < g.cfg.FlashDuty
}

// keyIndex draws a zero-based key-space index from the static popularity
// distribution.
func (g *Generator) keyIndex(rng *xrand.Rng) int64 {
	if g.zipf == nil {
		return rng.Int63n(g.cfg.KeySpace)
	}
	return g.perm[g.zipf.Rank(rng)]
}

// KeyAt draws a key at the given run phase in [0, 1): the static
// popularity draw, redirected into the hot set during flash windows and
// rotated through the key space under drift. With no dynamics configured
// it consumes exactly the same RNG stream as Key, so static workloads are
// unchanged by callers switching to the phased form.
func (g *Generator) KeyAt(rng *xrand.Rng, phase float64) core.Key {
	var idx int64
	if g.flashActive(phase) && rng.Float64() < g.cfg.FlashBoost {
		// Hot-set draw: the hottest hotN ranks under Zipf (their keys are
		// scattered by the rank permutation, like a real flash crowd's),
		// the lowest hotN indices under uniform.
		if g.zipf != nil {
			idx = g.perm[rng.Int63n(g.hotN)]
		} else {
			idx = rng.Int63n(g.hotN)
		}
	} else {
		idx = g.keyIndex(rng)
	}
	if g.cfg.DriftPeriod > 0 {
		// Rotate the popularity→key mapping once around the key space per
		// DriftPeriod of the run: the hot working set moves continuously.
		off := int64(phase / g.cfg.DriftPeriod * float64(g.cfg.KeySpace))
		idx = (idx + off) % g.cfg.KeySpace
		if idx < 0 {
			idx += g.cfg.KeySpace
		}
	}
	return core.Key(1 + idx)
}

// ThinkNsAt returns the post-op think time at the given phase: a
// raised-cosine day curve peaking at ThinkNs mid-window. 0 when no
// diurnal ramp is configured.
func (g *Generator) ThinkNsAt(phase float64) int64 {
	if g.cfg.ThinkNs <= 0 {
		return 0
	}
	return int64(float64(g.cfg.ThinkNs) * (1 - math.Cos(2*math.Pi*phase)) / 2)
}

// NextOp draws the operation kind: one uniform variate against the
// cumulative mix thresholds (see the Generator field comment).
func (g *Generator) NextOp(rng *xrand.Rng) Op {
	u := rng.Float64()
	switch {
	case u < g.pCursor:
		return OpCursorScan
	case u < g.pScan:
		return OpScan
	case u < g.pBatchPut:
		return OpMultiPut
	case u < g.pBatchRemove:
		return OpMultiRemove
	case u < g.pBatch:
		return OpMultiGet
	case u < g.pPut:
		return OpPut
	case u < g.pRemove:
		return OpRemove
	default:
		return OpGet
	}
}

// BatchLen draws a batch length (keys per Multi* call) from the
// configured batch-length distribution; always >= 1.
func (g *Generator) BatchLen(rng *xrand.Rng) int64 {
	return drawLen(rng, g.cfg.BatchLen, g.cfg.BatchLenDist)
}

// ScanLen draws a scan length (keys of the key space spanned) from the
// configured distribution; always >= 1.
func (g *Generator) ScanLen(rng *xrand.Rng) int64 {
	return drawLen(rng, g.cfg.ScanLen, g.cfg.ScanLenDist)
}

// PageLen draws a cursor page size (keys delivered per Next batch) from
// the configured page-size distribution; always >= 1.
func (g *Generator) PageLen(rng *xrand.Rng) int64 {
	return drawLen(rng, g.cfg.PageLen, g.cfg.PageLenDist)
}

// drawLen draws from one of the shared length distributions with the
// given mean; always >= 1.
func drawLen(rng *xrand.Rng, mean int64, dist string) int64 {
	switch dist {
	case ScanLenFixed:
		if mean < 1 {
			return 1
		}
		return mean
	case ScanLenGeometric:
		if mean <= 1 {
			return 1
		}
		// Inverse-CDF geometric with success probability 1/mean.
		u := rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		n := int64(math.Log(u)/math.Log(1-1/float64(mean))) + 1
		if n < 1 {
			n = 1
		}
		return n
	default: // ScanLenUniform
		if mean <= 1 {
			return 1
		}
		return 1 + rng.Int63n(2*mean-1) // uniform on [1, 2*mean-1], mean = mean
	}
}

// ScanRange draws one scan window [lo, hi): the start follows the key
// popularity distribution (so skewed workloads scan hot regions more,
// like real feed reads) and the width follows the scan-length
// distribution. The window is a key-space interval; on the paper's
// half-full structures a width of L covers about L/2 live elements.
func (g *Generator) ScanRange(rng *xrand.Rng) (lo, hi core.Key) {
	lo = g.Key(rng)
	return lo, lo + core.Key(g.ScanLen(rng))
}

// ScanRangeAt is ScanRange with the start key drawn at the given phase
// (see KeyAt); the width draw is phase-independent.
func (g *Generator) ScanRangeAt(rng *xrand.Rng, phase float64) (lo, hi core.Key) {
	lo = g.KeyAt(rng, phase)
	return lo, lo + core.Key(g.ScanLen(rng))
}

// Fill populates s to the expected steady-state size: every other key of
// the key space, mirroring the 50% occupancy the paper's key-space sizing
// produces. Returns the number inserted.
func (g *Generator) Fill(c *core.Ctx, s core.Set) int {
	n := 0
	for k := int64(1); k <= g.cfg.KeySpace && n < g.cfg.Size; k += 2 {
		if s.Put(c, core.Key(k), core.Value(k)) {
			n++
		}
	}
	return n
}

// SumPSquared exposes the collision mass of the key distribution for the
// birthday model (1/KeySpace for uniform).
func (g *Generator) SumPSquared() float64 {
	if g.zipf == nil {
		return 1 / float64(g.cfg.KeySpace)
	}
	return g.zipf.SumPSquared()
}
