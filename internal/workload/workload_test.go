package workload

import (
	"math"
	"testing"

	"csds/internal/core"
	"csds/internal/list"
	"csds/internal/xrand"
)

func TestDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Size != 1024 || c.KeySpace != 2048 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c2 := Config{Size: 512}.WithDefaults()
	if c2.KeySpace != 1024 {
		t.Fatalf("key space not 2x size: %+v", c2)
	}
}

func TestKeysInRange(t *testing.T) {
	for _, s := range []float64{0, 0.8} {
		g := NewGenerator(Config{Size: 128, ZipfS: s})
		rng := xrand.New(1)
		for i := 0; i < 10000; i++ {
			k := g.Key(rng)
			if k < 1 || k > 256 {
				t.Fatalf("key %d out of [1, 256] (s=%v)", k, s)
			}
		}
	}
}

func TestOpMixRatio(t *testing.T) {
	g := NewGenerator(Config{Size: 128, UpdateRatio: 0.2})
	rng := xrand.New(2)
	var gets, puts, rems int
	const draws = 100000
	for i := 0; i < draws; i++ {
		switch g.NextOp(rng) {
		case OpGet:
			gets++
		case OpPut:
			puts++
		case OpRemove:
			rems++
		}
	}
	if got := float64(gets) / draws; math.Abs(got-0.8) > 0.01 {
		t.Fatalf("get fraction %f, want 0.8", got)
	}
	// Inserts and removes split evenly.
	if d := math.Abs(float64(puts-rems)) / draws; d > 0.01 {
		t.Fatalf("puts %d vs removes %d not balanced", puts, rems)
	}
}

// chiSquareMix draws n ops and returns the chi-square statistic of the
// observed 8-way mix against the expected fractions (cells with zero
// expectation are asserted empty instead of divided by).
func chiSquareMix(t *testing.T, g *Generator, seed uint64, n int, want [8]float64) float64 {
	t.Helper()
	rng := xrand.New(seed)
	var obs [8]int
	for i := 0; i < n; i++ {
		obs[g.NextOp(rng)]++
	}
	chi2 := 0.0
	for cell, p := range want {
		exp := p * float64(n)
		if exp == 0 {
			if obs[cell] != 0 {
				t.Fatalf("op %d drawn %d times but has probability 0", cell, obs[cell])
			}
			continue
		}
		d := float64(obs[cell]) - exp
		chi2 += d * d / exp
	}
	return chi2
}

// chi2Crit7 is the 99.9th percentile of chi-square with 7 degrees of
// freedom: a correct generator fails this once in a thousand seeds, and
// the seeds here are fixed.
const chi2Crit7 = 24.32

// TestOpMixChiSquare pins the drawn mix to the configured fractions with
// a goodness-of-fit test, across mixes with and without scans, cursors
// and batches — the regression guard for the single-draw threshold
// arithmetic: adding OpScan (then OpCursorScan, now the Multi* batch
// kinds) to the mix must not skew Get/Put/Remove relative shares, and
// the batch segment must itself split by UpdateRatio.
func TestOpMixChiSquare(t *testing.T) {
	const draws = 200000
	cases := []struct {
		name string
		cfg  Config
		// Indexed by Op: get, put, remove, scan, cursor, multiget,
		// multiput, multiremove.
		want [8]float64
	}{
		{"paper-mix-no-scans", Config{Size: 128, UpdateRatio: 0.2},
			[8]float64{0.8, 0.1, 0.1, 0, 0, 0, 0, 0}},
		{"scan-heavy", Config{Size: 128, UpdateRatio: 0.2, ScanRatio: 0.3},
			[8]float64{0.5, 0.1, 0.1, 0.3, 0, 0, 0, 0}},
		{"all-three-small", Config{Size: 128, UpdateRatio: 0.1, ScanRatio: 0.05},
			[8]float64{0.85, 0.05, 0.05, 0.05, 0, 0, 0, 0}},
		{"scans-only", Config{Size: 128, ScanRatio: 1},
			[8]float64{0, 0, 0, 1, 0, 0, 0, 0}},
		{"updates-clamped-by-scans", Config{Size: 128, UpdateRatio: 0.9, ScanRatio: 0.4},
			[8]float64{0, 0.3, 0.3, 0.4, 0, 0, 0, 0}},
		{"cursor-mix", Config{Size: 128, UpdateRatio: 0.2, CursorRatio: 0.1},
			[8]float64{0.7, 0.1, 0.1, 0, 0.1, 0, 0, 0}},
		{"cursor-and-scan", Config{Size: 128, UpdateRatio: 0.2, ScanRatio: 0.1, CursorRatio: 0.1},
			[8]float64{0.6, 0.1, 0.1, 0.1, 0.1, 0, 0, 0}},
		{"cursors-only", Config{Size: 128, CursorRatio: 1},
			[8]float64{0, 0, 0, 0, 1, 0, 0, 0}},
		{"updates-clamped-by-cursors", Config{Size: 128, UpdateRatio: 0.9, ScanRatio: 0.3, CursorRatio: 0.3},
			[8]float64{0, 0.2, 0.2, 0.3, 0.3, 0, 0, 0}},
		// Batch segment: BatchRatio 0.2 × UpdateRatio 0.2 = 0.04 split
		// evenly between batched puts and removes; the remaining 0.16 of
		// the segment is batched gets. Point ops keep their absolute
		// fractions (0.2 of the whole mix is point updates).
		{"batch-mix", Config{Size: 128, UpdateRatio: 0.2, BatchRatio: 0.2},
			[8]float64{0.6, 0.1, 0.1, 0, 0, 0.16, 0.02, 0.02}},
		{"batch-read-only", Config{Size: 128, BatchRatio: 0.5},
			[8]float64{0.5, 0, 0, 0, 0, 0.5, 0, 0}},
		// BatchRatio 1 leaves no room for point updates, so UpdateRatio
		// clamps to 0 and the batch segment's internal split follows it:
		// the whole mix becomes batched gets.
		{"batches-only", Config{Size: 128, UpdateRatio: 0.5, BatchRatio: 1},
			[8]float64{0, 0, 0, 0, 0, 1, 0, 0}},
		{"everything", Config{Size: 128, UpdateRatio: 0.2, ScanRatio: 0.1, CursorRatio: 0.1, BatchRatio: 0.2},
			[8]float64{0.4, 0.1, 0.1, 0.1, 0.1, 0.16, 0.02, 0.02}},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGenerator(tc.cfg)
			if chi2 := chiSquareMix(t, g, uint64(1000+i), draws, tc.want); chi2 > chi2Crit7 {
				t.Fatalf("chi-square %.2f exceeds %.2f: drawn mix inconsistent with %v", chi2, chi2Crit7, tc.want)
			}
		})
	}
}

func TestScanLenDistributions(t *testing.T) {
	const draws = 100000
	for _, dist := range []string{ScanLenUniform, ScanLenFixed, ScanLenGeometric} {
		t.Run(dist, func(t *testing.T) {
			g := NewGenerator(Config{Size: 4096, ScanRatio: 0.1, ScanLen: 64, ScanLenDist: dist})
			rng := xrand.New(7)
			sum := 0.0
			for i := 0; i < draws; i++ {
				n := g.ScanLen(rng)
				if n < 1 {
					t.Fatalf("scan length %d < 1", n)
				}
				if dist == ScanLenFixed && n != 64 {
					t.Fatalf("fixed scan length drew %d", n)
				}
				if dist == ScanLenUniform && n > 127 {
					t.Fatalf("uniform scan length %d outside [1, 127]", n)
				}
				sum += float64(n)
			}
			mean := sum / draws
			if math.Abs(mean-64) > 3 {
				t.Fatalf("%s mean scan length %.2f, want ~64", dist, mean)
			}
		})
	}
}

func TestPageLenDistributions(t *testing.T) {
	const draws = 100000
	for _, dist := range []string{ScanLenUniform, ScanLenFixed, ScanLenGeometric} {
		t.Run(dist, func(t *testing.T) {
			g := NewGenerator(Config{Size: 4096, CursorRatio: 0.1, PageLen: 32, PageLenDist: dist})
			rng := xrand.New(11)
			sum := 0.0
			for i := 0; i < draws; i++ {
				n := g.PageLen(rng)
				if n < 1 {
					t.Fatalf("page size %d < 1", n)
				}
				if dist == ScanLenFixed && n != 32 {
					t.Fatalf("fixed page size drew %d", n)
				}
				if dist == ScanLenUniform && n > 63 {
					t.Fatalf("uniform page size %d outside [1, 63]", n)
				}
				sum += float64(n)
			}
			mean := sum / draws
			if math.Abs(mean-32) > 2 {
				t.Fatalf("%s mean page size %.2f, want ~32", dist, mean)
			}
		})
	}
}

func TestBatchLenDistributions(t *testing.T) {
	const draws = 100000
	for _, dist := range []string{ScanLenUniform, ScanLenFixed, ScanLenGeometric} {
		t.Run(dist, func(t *testing.T) {
			g := NewGenerator(Config{Size: 4096, BatchRatio: 0.1, BatchLen: 64, BatchLenDist: dist})
			rng := xrand.New(13)
			sum := 0.0
			for i := 0; i < draws; i++ {
				n := g.BatchLen(rng)
				if n < 1 {
					t.Fatalf("batch length %d < 1", n)
				}
				if dist == ScanLenFixed && n != 64 {
					t.Fatalf("fixed batch length drew %d", n)
				}
				if dist == ScanLenUniform && n > 127 {
					t.Fatalf("uniform batch length %d outside [1, 127]", n)
				}
				sum += float64(n)
			}
			mean := sum / draws
			if math.Abs(mean-64) > 3 {
				t.Fatalf("%s mean batch length %.2f, want ~64", dist, mean)
			}
		})
	}
}

func TestBatchDefaults(t *testing.T) {
	c := Config{Size: 512, BatchRatio: 0.1}.WithDefaults()
	if c.BatchLen != 64 || c.BatchLenDist != ScanLenUniform {
		t.Fatalf("batch defaults wrong: %+v", c)
	}
	// Batches yield to cursors and scans but win over point updates.
	c2 := Config{Size: 512, CursorRatio: 0.4, ScanRatio: 0.4, BatchRatio: 0.5, UpdateRatio: 0.5}.WithDefaults()
	if math.Abs(c2.BatchRatio-0.2) > 1e-9 || c2.UpdateRatio != 0 {
		t.Fatalf("batch ratio clamping wrong: %+v", c2)
	}
}

func TestCursorDefaults(t *testing.T) {
	c := Config{Size: 512, CursorRatio: 0.1}.WithDefaults()
	if c.PageLen != 16 || c.PageLenDist != ScanLenUniform {
		t.Fatalf("cursor defaults wrong: %+v", c)
	}
	// Cursors win ties over scans, scans over updates.
	c2 := Config{Size: 512, CursorRatio: 0.6, ScanRatio: 0.6, UpdateRatio: 0.6}.WithDefaults()
	if c2.CursorRatio != 0.6 || math.Abs(c2.ScanRatio-0.4) > 1e-9 || c2.UpdateRatio != 0 {
		t.Fatalf("ratio clamping wrong: %+v", c2)
	}
}

func TestScanRangeWindows(t *testing.T) {
	g := NewGenerator(Config{Size: 128, ScanRatio: 0.2, ScanLen: 16})
	rng := xrand.New(9)
	for i := 0; i < 10000; i++ {
		lo, hi := g.ScanRange(rng)
		if lo < 1 || lo > 256 {
			t.Fatalf("scan lo %d outside the key space [1, 256]", lo)
		}
		if hi <= lo || hi > lo+31 {
			t.Fatalf("scan window [%d, %d) inconsistent with mean length 16", lo, hi)
		}
	}
}

func TestScanDefaults(t *testing.T) {
	c := Config{Size: 512, ScanRatio: 0.1}.WithDefaults()
	if c.ScanLen != 64 || c.ScanLenDist != ScanLenUniform {
		t.Fatalf("scan defaults wrong: %+v", c)
	}
	// ScanLen never exceeds the key space (a scan wider than the domain
	// is just a full scan).
	c2 := Config{Size: 16, ScanRatio: 0.1, ScanLen: 1000}.WithDefaults()
	if c2.ScanLen != 32 {
		t.Fatalf("ScanLen not clamped to key space: %+v", c2)
	}
}

func TestFillReachesSize(t *testing.T) {
	g := NewGenerator(Config{Size: 200})
	s := list.NewLazy(core.Options{})
	c := core.NewCtx(0)
	n := g.Fill(c, s)
	if n != 200 || s.Len() != 200 {
		t.Fatalf("fill inserted %d, Len %d, want 200", n, s.Len())
	}
}

func TestZipfSkewsKeys(t *testing.T) {
	g := NewGenerator(Config{Size: 512, ZipfS: 0.8})
	rng := xrand.New(3)
	counts := map[core.Key]int{}
	for i := 0; i < 200000; i++ {
		counts[g.Key(rng)]++
	}
	// Hottest key must be far above the uniform expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := 200000 / 1024
	if max < 3*uniform {
		t.Fatalf("hottest key %d not skewed vs uniform %d", max, uniform)
	}
}

func TestSumPSquared(t *testing.T) {
	gu := NewGenerator(Config{Size: 512})
	if got := gu.SumPSquared(); math.Abs(got-1.0/1024) > 1e-12 {
		t.Fatalf("uniform SumPSquared = %v", got)
	}
	gz := NewGenerator(Config{Size: 512, ZipfS: 0.8})
	if gz.SumPSquared() <= gu.SumPSquared() {
		t.Fatal("zipf collision mass not larger than uniform")
	}
}

func TestZipfPermDecorrelates(t *testing.T) {
	// The two hottest keys must not be adjacent (rank 0 and 1 mapped apart).
	g := NewGenerator(Config{Size: 4096, ZipfS: 0.99})
	rng := xrand.New(4)
	counts := map[core.Key]int{}
	for i := 0; i < 300000; i++ {
		counts[g.Key(rng)]++
	}
	var k1, k2 core.Key
	var c1, c2 int
	for k, c := range counts {
		if c > c1 {
			k2, c2 = k1, c1
			k1, c1 = k, c
		} else if c > c2 {
			k2, c2 = k, c
		}
	}
	if d := k1 - k2; d == 1 || d == -1 {
		t.Fatalf("two hottest keys adjacent (%d, %d): permutation missing", k1, k2)
	}
}
