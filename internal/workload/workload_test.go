package workload

import (
	"math"
	"testing"

	"csds/internal/core"
	"csds/internal/list"
	"csds/internal/xrand"
)

func TestDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Size != 1024 || c.KeySpace != 2048 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c2 := Config{Size: 512}.WithDefaults()
	if c2.KeySpace != 1024 {
		t.Fatalf("key space not 2x size: %+v", c2)
	}
}

func TestKeysInRange(t *testing.T) {
	for _, s := range []float64{0, 0.8} {
		g := NewGenerator(Config{Size: 128, ZipfS: s})
		rng := xrand.New(1)
		for i := 0; i < 10000; i++ {
			k := g.Key(rng)
			if k < 1 || k > 256 {
				t.Fatalf("key %d out of [1, 256] (s=%v)", k, s)
			}
		}
	}
}

func TestOpMixRatio(t *testing.T) {
	g := NewGenerator(Config{Size: 128, UpdateRatio: 0.2})
	rng := xrand.New(2)
	var gets, puts, rems int
	const draws = 100000
	for i := 0; i < draws; i++ {
		switch g.NextOp(rng) {
		case OpGet:
			gets++
		case OpPut:
			puts++
		case OpRemove:
			rems++
		}
	}
	if got := float64(gets) / draws; math.Abs(got-0.8) > 0.01 {
		t.Fatalf("get fraction %f, want 0.8", got)
	}
	// Inserts and removes split evenly.
	if d := math.Abs(float64(puts-rems)) / draws; d > 0.01 {
		t.Fatalf("puts %d vs removes %d not balanced", puts, rems)
	}
}

func TestFillReachesSize(t *testing.T) {
	g := NewGenerator(Config{Size: 200})
	s := list.NewLazy(core.Options{})
	c := core.NewCtx(0)
	n := g.Fill(c, s)
	if n != 200 || s.Len() != 200 {
		t.Fatalf("fill inserted %d, Len %d, want 200", n, s.Len())
	}
}

func TestZipfSkewsKeys(t *testing.T) {
	g := NewGenerator(Config{Size: 512, ZipfS: 0.8})
	rng := xrand.New(3)
	counts := map[core.Key]int{}
	for i := 0; i < 200000; i++ {
		counts[g.Key(rng)]++
	}
	// Hottest key must be far above the uniform expectation.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := 200000 / 1024
	if max < 3*uniform {
		t.Fatalf("hottest key %d not skewed vs uniform %d", max, uniform)
	}
}

func TestSumPSquared(t *testing.T) {
	gu := NewGenerator(Config{Size: 512})
	if got := gu.SumPSquared(); math.Abs(got-1.0/1024) > 1e-12 {
		t.Fatalf("uniform SumPSquared = %v", got)
	}
	gz := NewGenerator(Config{Size: 512, ZipfS: 0.8})
	if gz.SumPSquared() <= gu.SumPSquared() {
		t.Fatal("zipf collision mass not larger than uniform")
	}
}

func TestZipfPermDecorrelates(t *testing.T) {
	// The two hottest keys must not be adjacent (rank 0 and 1 mapped apart).
	g := NewGenerator(Config{Size: 4096, ZipfS: 0.99})
	rng := xrand.New(4)
	counts := map[core.Key]int{}
	for i := 0; i < 300000; i++ {
		counts[g.Key(rng)]++
	}
	var k1, k2 core.Key
	var c1, c2 int
	for k, c := range counts {
		if c > c1 {
			k2, c2 = k1, c1
			k1, c1 = k, c
		} else if c > c2 {
			k2, c2 = k, c
		}
	}
	if d := k1 - k2; d == 1 || d == -1 {
		t.Fatalf("two hottest keys adjacent (%d, %d): permutation missing", k1, k2)
	}
}
