// Package xrand provides the fast per-thread pseudo-random machinery used by
// every workload generator and simulator in this repository.
//
// The benchmark harness follows the ASCYLIB methodology of the paper: each
// worker thread owns an independent generator so that key sampling never
// introduces synchronization of its own (a shared math/rand.Rand would
// serialize the very threads whose independence we are measuring). The
// generator is xorshift128+, the same family used by ASCYLIB's benchmarks;
// it is small, allocation-free, and passes the statistical smoke tests in
// this package.
package xrand

// Rng is an xorshift128+ pseudo-random generator. It is NOT safe for
// concurrent use; give each worker goroutine its own instance (see
// core.Ctx).
type Rng struct {
	s0, s1 uint64
}

// splitmix64 is the recommended seeding function for xorshift generators:
// it diffuses consecutive integer seeds into well-distributed state words.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators built from
// different seeds produce independent-looking streams; seed 0 is valid.
func New(seed uint64) *Rng {
	r := &Rng{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state deterministically from seed.
func (r *Rng) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	// xorshift128+ requires a non-zero state; splitmix64 of any seed makes
	// an all-zero state astronomically unlikely, but guard anyway.
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 0x9e3779b97f4a7c15
	}
}

// Next returns the next 64 uniformly distributed bits.
func (r *Rng) Next() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
// Uses Lemire's multiply-shift reduction (no modulo bias worth worrying
// about at benchmark scale, and far cheaper than rejection sampling).
func (r *Rng) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// 128-bit multiply high via two 64x64->64 halves.
	x := r.Next()
	hi, _ := mul64(x, n)
	return hi
}

// Int63n returns a uniform value in [0, n) as int64. n must be > 0.
func (r *Rng) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with n <= 0")
	}
	return int64(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rng) Float64() float64 {
	// 53 high bits -> [0,1) with full double precision.
	return float64(r.Next()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rng) Bool(p float64) bool {
	return r.Float64() < p
}

// mul64 computes the 128-bit product of a and b, returning (hi, lo).
// Hand-rolled so the package stays dependency-free (math/bits would also
// work; this mirrors its implementation and inlines well).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}
