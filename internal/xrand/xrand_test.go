package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestReseedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Next()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Next(); got != first[i] {
			t.Fatalf("reseed did not reset stream at %d: %d != %d", i, got, first[i])
		}
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s0 == 0 && r.s1 == 0 {
		t.Fatal("zero seed left generator in all-zero state")
	}
	// Must produce varied output.
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Next()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero-seeded rng produced only %d distinct values of 100", len(seen))
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40, math.MaxUint64} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared smoke test over 16 buckets.
	r := New(11)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile ~ 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %f too large, distribution skewed: %v", chi2, counts)
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	New(1).Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %f", got)
	}
}

func TestMul64MatchesBigMul(t *testing.T) {
	// Property: our hand-rolled mul64 must agree with the shift-and-add
	// reference on random inputs.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Reference via 32-bit limbs.
		rhi, rlo := refMul64(a, b)
		return hi == rhi && lo == rlo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func refMul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	ll := al * bl
	lh := al * bh
	hl := ah * bl
	hh := ah * bh
	mid := lh + (ll >> 32) + (hl & mask)
	lo = (mid << 32) | (ll & mask)
	hi = hh + (mid >> 32) + (hl >> 32)
	return
}

func TestZipfCDFMonotone(t *testing.T) {
	z := NewZipf(1000, 0.8)
	prev := 0.0
	for i, c := range z.cdf {
		if c < prev {
			t.Fatalf("cdf not monotone at %d: %f < %f", i, c, prev)
		}
		prev = c
	}
	if z.cdf[len(z.cdf)-1] != 1 {
		t.Fatalf("cdf does not end at 1: %f", z.cdf[len(z.cdf)-1])
	}
}

func TestZipfRankInRange(t *testing.T) {
	z := NewZipf(64, 0.8)
	r := New(13)
	for i := 0; i < 10000; i++ {
		rk := z.Rank(r)
		if rk < 0 || rk >= 64 {
			t.Fatalf("rank out of range: %d", rk)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// Rank 0 must be sampled ~P(0) of the time, and more often than rank 50.
	z := NewZipf(100, 0.8)
	r := New(17)
	const draws = 200000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		counts[z.Rank(r)]++
	}
	p0 := float64(counts[0]) / draws
	if math.Abs(p0-z.P(0)) > 0.01 {
		t.Fatalf("empirical P(0)=%f want %f", p0, z.P(0))
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: count[0]=%d count[50]=%d", counts[0], counts[50])
	}
}

func TestZipfZeroSIsUniform(t *testing.T) {
	z := NewZipf(10, 0)
	for i := int64(0); i < 10; i++ {
		if math.Abs(z.P(i)-0.1) > 1e-12 {
			t.Fatalf("s=0 rank %d has P=%f, want 0.1", i, z.P(i))
		}
	}
}

func TestZipfPSumsToOne(t *testing.T) {
	z := NewZipf(517, 0.8)
	sum := 0.0
	for i := int64(0); i < z.N(); i++ {
		sum += z.P(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %f", sum)
	}
}

func TestZipfSumPSquared(t *testing.T) {
	// For the uniform case sum p^2 = 1/n exactly.
	z := NewZipf(128, 0)
	if got := z.SumPSquared(); math.Abs(got-1.0/128) > 1e-12 {
		t.Fatalf("uniform SumPSquared = %v, want 1/128", got)
	}
	// Skewed distributions concentrate mass: sum p^2 must exceed 1/n.
	zs := NewZipf(128, 0.8)
	if zs.SumPSquared() <= 1.0/128 {
		t.Fatal("zipf SumPSquared not larger than uniform")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int64
		s float64
	}{{0, 0.8}, {-1, 0.8}, {10, -1}, {10, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %f) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := Perm(1000, r)
	seen := make([]bool, 1000)
	for _, v := range p {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation: %d", v)
		}
		seen[v] = true
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(31)
	const draws = 50000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Poisson(3.5)
	}
	mean := float64(sum) / draws
	if math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("Poisson mean %f, want 3.5", mean)
	}
}

func TestPoissonNonPositive(t *testing.T) {
	r := New(31)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda must be 0")
	}
}

func TestExpMean(t *testing.T) {
	r := New(37)
	const draws = 100000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp produced negative %f", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("Exp mean %f, want 2.0", mean)
	}
}

func BenchmarkNext(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Next()
	}
	_ = sink
}

func BenchmarkZipfRank(b *testing.B) {
	z := NewZipf(4096, 0.8)
	r := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += z.Rank(r)
	}
	_ = sink
}
