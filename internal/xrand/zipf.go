package xrand

import "math"

// Zipf samples keys from a Zipfian distribution over {0, ..., n-1} with
// exponent s, the non-uniform workload of Section 5.2 of the paper
// (which uses s = 0.8, "known to model a large percentage of real
// workloads" per the YCSB study the paper cites).
//
// Rank i (0-based) is drawn with probability proportional to 1/(i+1)^s.
// Sampling uses binary search over the precomputed CDF: O(log n) per draw,
// fully deterministic given the Rng, no allocation per draw.
//
// The precomputed table is immutable after construction, so a single Zipf
// may be shared by many goroutines, each passing its own Rng.
type Zipf struct {
	n   int64
	s   float64
	cdf []float64 // cdf[i] = P(rank <= i), cdf[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent s. n must be >= 1 and
// s must be >= 0 (s == 0 degenerates to the uniform distribution).
func NewZipf(n int64, s float64) *Zipf {
	if n < 1 {
		panic("xrand: NewZipf with n < 1")
	}
	if s < 0 || math.IsNaN(s) {
		panic("xrand: NewZipf with negative or NaN s")
	}
	z := &Zipf{n: n, s: s, cdf: make([]float64, n)}
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	inv := 1 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	z.cdf[n-1] = 1 // guard against FP drift so search never falls off the end
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int64 { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Rank draws a rank in [0, n): rank 0 is the most popular.
func (z *Zipf) Rank(r *Rng) int64 {
	u := r.Float64()
	// Binary search for the first index with cdf[i] >= u.
	lo, hi := int64(0), z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// P returns the probability of rank i, used by the birthday-paradox model's
// non-uniform term (Equation 6 needs sum of p_i^2).
func (z *Zipf) P(i int64) float64 {
	if i < 0 || i >= z.n {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// SumPSquared returns sum over i of P(i)^2, the collision mass that drives
// Equation (6) of the paper.
func (z *Zipf) SumPSquared() float64 {
	sum := 0.0
	prev := 0.0
	for _, c := range z.cdf {
		p := c - prev
		sum += p * p
		prev = c
	}
	return sum
}

// Perm shuffles ranks to keys: popular ranks should not map to adjacent
// keys, otherwise Zipf hot spots would also be physically adjacent nodes
// and conflicts would be overstated for list structures. The permutation
// is the standard Fisher–Yates shuffle of 0..n-1 driven by r.
func Perm(n int64, r *Rng) []int64 {
	p := make([]int64, n)
	for i := int64(0); i < n; i++ {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Int63n(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Poisson draws from a Poisson distribution with mean lambda, used by the
// interrupt substrate to model context-switch arrivals (the multiprogramming
// scenario of Section 5.4 observed ~3300 context switches/second; we model
// arrivals in a window as Poisson). Knuth's multiplication method is O(λ)
// but our λ per window is small.
func (r *Rng) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exp draws an exponentially distributed value with the given mean,
// used for inter-arrival times of injected delays.
func (r *Rng) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard u == 0: log(0) is -Inf.
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
