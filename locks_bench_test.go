package csds

import (
	"fmt"
	"sync"
	"testing"

	"csds/internal/locks"
)

// benchLocks drives TAS, ticket and MCS locks through CSDS-shaped critical
// sections (a handful of plain writes) at several contention levels.
func benchLocks(b *testing.B) {
	type lockMaker struct {
		name string
		mk   func() func(f func())
	}
	makers := []lockMaker{
		{"tas", func() func(func()) {
			var l locks.TAS
			return func(f func()) { l.Acquire(nil); f(); l.Release() }
		}},
		{"ticket", func() func(func()) {
			var l locks.Ticket
			return func(f func()) { l.Acquire(nil); f(); l.Release() }
		}},
		{"mcs", func() func(func()) {
			l := &locks.MCS{}
			var pool = sync.Pool{New: func() any { return new(locks.MCSNode) }}
			return func(f func()) {
				qn := pool.Get().(*locks.MCSNode)
				l.AcquireNode(qn, nil)
				f()
				l.ReleaseNode(qn)
				pool.Put(qn)
			}
		}},
	}
	for _, m := range makers {
		for _, par := range []int{1, 8} {
			b.Run(fmt.Sprintf("lock=%s/par=%d", m.name, par), func(b *testing.B) {
				cs := m.mk()
				var shared [4]int64
				b.SetParallelism(par)
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						cs(func() {
							// CSDS-like write phase: touch a couple of
							// fields.
							shared[0]++
							shared[3] = shared[0]
						})
					}
				})
			})
		}
	}
}
