#!/usr/bin/env sh
# autotune_eval.sh — the tuner's acceptance harness: for every named
# workload mix, bench a roster of hand-tuned composite specs and the
# tuner's auto-derived spec (csdsbench -auto-spec) under identical
# budgets, then print a per-mix table of throughputs with the winner
# marked. The committed run lives in docs/autotune-evidence.md;
# regenerate it with:
#
#   go build -o csdsbench ./cmd/csdsbench
#   sh scripts/autotune_eval.sh ./csdsbench
#
# The hand-tuned roster is deliberately the specs an operator would
# reach for first: the bare leaf, the two sharded widths the bench grid
# measures, and a generously sized read cache over the wide composite.
# Budgets mirror the bench grid (4 threads, 2048 elements, 300ms x 2).
set -eu

BIN=${1:?usage: autotune_eval.sh /path/to/csdsbench}

mixes="paper ycsb-a ycsb-b ycsb-c ycsb-d ycsb-e ycsb-f flash diurnal drift"
hand_specs="list/lazy sharded(8,list/lazy) sharded(32,list/lazy) readcache(1024,sharded(32,list/lazy))"

# mops <mix> [extra flags...] -> throughput of one cell, in Mops
mops() {
    wl=$1
    shift
    "$BIN" -workload "$wl" -threads 4 -size 2048 -dur 300ms -runs 2 -csv "$@" |
        tail -n 1 | awk -F',' '
            # alg may carry commas: the numeric columns are fixed from the
            # right, so count from the end. mops is the 34th-from-last
            # field (41 columns, mops is column 9).
            { print $(NF-32) }'
}

echo "auto-tuned vs hand-tuned, per named workload (Mops, higher is better)"
echo "budgets: -threads 4 -size 2048 -dur 300ms -runs 2"
echo
for mix in $mixes; do
    best_spec=""
    best=0
    echo "$mix:"
    for spec in $hand_specs; do
        m=$(mops "$mix" -alg "$spec")
        echo "  hand  $spec: $m"
        if awk "BEGIN{exit !($m > $best)}"; then
            best=$m
            best_spec=$spec
        fi
    done
    auto_spec=$("$BIN" -workload "$mix" -threads 4 -size 2048 -auto-spec -alg list/lazy -csv -dur 1ms -runs 1 | tail -n 1 | sed 's/,4,2048,.*//')
    m=$(mops "$mix" -auto-spec -alg list/lazy)
    echo "  auto  $auto_spec: $m"
    # When the tuner derives the very spec that won the hand roster, the
    # two numbers are two samples of one configuration — identity, not a
    # race. Otherwise allow 5% measurement noise before calling a loss.
    if [ "$auto_spec" = "$best_spec" ]; then
        verdict="auto derived the winning hand spec itself ($best_spec)"
    elif awk "BEGIN{exit !($m >= $best * 0.95)}"; then
        verdict="auto matches or beats hand-tuned (best hand: $best_spec at $best)"
    else
        verdict="HAND-TUNED WINS: $best_spec at $best vs auto $m"
    fi
    echo "  => $verdict"
    echo
done
