#!/usr/bin/env sh
# bench_grid.sh — the fixed CI bench grid, emitted as one CSV.
#
# This is the single source of truth for the perf-trajectory grid: CI
# runs it on every push (uploading the CSV and its benchsnap JSON as
# artifacts, plus the benchsnap -diff report against the previous
# artifact), and the committed BENCH_baseline.json is the benchsnap
# conversion of one local run. Changing any axis here requires
# regenerating the baseline (and benchsnap's sample expectations):
#
#   go build -o csdsbench ./cmd/csdsbench
#   go build -o csdsd ./cmd/csdsd
#   sh scripts/bench_grid.sh ./csdsbench ./csdsd > bench.csv
#   go run ./cmd/benchsnap -out BENCH_baseline.json bench.csv
#
# The grid is deliberately small — one plain structure against its
# composites, under the paper's 10%-update mix plus a 5% one-shot-scan
# and 5% paginated-cursor tail — so a CI runner finishes in seconds
# while still exposing the throughput regimes (single instance, static
# partition, resizable partition), all three op families (point, scan,
# page), the wide-composite cells where the streaming cursor merge
# matters most (sharded(32)/elastic(32): the old eager merge paid 32x
# overcollect per page there; page_pull_keys in the artifact proves the
# difference), and a readcache cell under Zipfian skew so cache-path
# regressions surface in the trajectory.
#
# The batch cells run the batched-operation mix (25% Multi* calls of 64
# keys, no scans or cursors) on the wide composites where shard grouping
# amortizes best — uniform and Zipf-0.9 each, so the skewed cells show
# what grouping buys when most keys land in one shard — plus a
# deliberately contended sharded(1) cell where every batch fights for a
# single lock: its combine_frac column proves the flat-combining path
# engages in the trajectory (and stays near zero in the wide cells).
#
# The two ycsb-b workload cells (hand-tuned spec vs -auto-spec) keep the
# model-driven tuner honest against the best fixed configuration — see
# run_wl_cell below.
set -eu

BIN=${1:?usage: bench_grid.sh /path/to/csdsbench [/path/to/csdsd]}
CSDSD=${2:-}

first=1
emit() {
    if [ "$first" -eq 1 ]; then
        printf '%s\n' "$1"
        first=0
    else
        printf '%s\n' "$1" | tail -n 1
    fi
}

run_cell() {
    alg=$1
    zipf=$2
    emit "$("$BIN" -alg "$alg" -threads 4 -size 2048 -updates 0.1 -zipf "$zipf" \
        -scan-frac 0.05 -scan-len 64 \
        -cursor-frac 0.05 -page-len 16 \
        -dur 300ms -runs 2 -csv)"
}

run_batch_cell() {
    alg=$1
    zipf=$2
    emit "$("$BIN" -alg "$alg" -threads 4 -size 2048 -updates 0.1 -zipf "$zipf" \
        -scan-frac 0 -cursor-frac 0 \
        -batch-frac 0.25 -batch-len 64 \
        -dur 300ms -runs 2 -csv)"
}

# The ebr=on cells re-run the wide composites with epoch-based
# reclamation and node pooling attached (the ebr column in the artifact
# distinguishes them from their GC-only twins). They carry the
# reclamation economics into the trajectory: pool_hit_frac and the
# allocs_op delta against the ebr=off cell show what recycling buys,
# and gc_pause_ns shows what the collector stops paying.
run_ebr_cell() {
    alg=$1
    zipf=$2
    emit "$("$BIN" -alg "$alg" -threads 4 -size 2048 -updates 0.1 -zipf "$zipf" \
        -scan-frac 0.05 -scan-len 64 \
        -cursor-frac 0.05 -page-len 16 \
        -ebr \
        -dur 300ms -runs 2 -csv)"
}

# The workload cells (workload=ycsb-b in the artifact) run a named
# production mix instead of bare flags: one hand-tuned cell on the best
# fixed spec for this host shape, and one -auto-spec cell where the
# tuner derives the composite from the mix and the machine (for ycsb-b
# at 4 threads / 2048 elements it derives
# readcache(1024,sharded(32,list/lazy)) — pinned by the tuner and
# csdsmodel tests, so the cell identity cannot drift silently). The
# pair is the standing auto-tuned-vs-hand-tuned comparison: benchsnap
# -diff carries both cells, and the auto cell's alg column records the
# derived spec that was actually measured.
run_wl_cell() {
    wl=$1
    shift
    emit "$("$BIN" -workload "$wl" -threads 4 -size 2048 "$@" \
        -dur 300ms -runs 2 -csv)"
}

# The networked cell (net=1 in the artifact) measures the whole serving
# stack: a real csdsd on loopback, csdsbench as a closed-loop -net
# client driving the same point+scan+cursor mix through the memcache
# text protocol, pipelined bursts and all. Budgets match the in-process
# cells — throughput is dominated by loopback round-trips, which is the
# point: the cell tracks the wire stack's overhead in the trajectory,
# never a wall-clock assertion. The server is SIGTERMed afterward and
# its graceful drain must exit clean (retired == reclaimed), so every
# bench run is also a drain test. The -alg flag only labels the CSV row
# here; the structure actually measured is the one csdsd serves.
run_net_cell() {
    alg=$1
    addr=$2
    # The server's drain-audit line goes to stderr: the script's stdout
    # is the CSV and must stay pure.
    "$CSDSD" -addr "$addr" -alg "$alg" -size 2048 -quiet >&2 &
    srv=$!
    emit "$("$BIN" -net "$addr" -alg "$alg" -threads 4 -size 2048 -updates 0.1 -zipf 0 \
        -scan-frac 0.05 -scan-len 64 \
        -cursor-frac 0.05 -page-len 16 \
        -dur 300ms -runs 2 -csv)"
    kill -TERM "$srv"
    wait "$srv"
}

run_cell 'list/lazy' 0
run_cell 'sharded(8,list/lazy)' 0
run_cell 'elastic(8,list/lazy)' 0
run_cell 'sharded(32,list/lazy)' 0
run_cell 'elastic(32,list/lazy)' 0
run_ebr_cell 'sharded(32,list/lazy)' 0
run_ebr_cell 'elastic(32,list/lazy)' 0
run_cell 'readcache(1024,list/lazy)' 0.9
run_batch_cell 'sharded(32,list/lazy)' 0
run_batch_cell 'sharded(32,list/lazy)' 0.9
run_batch_cell 'elastic(32,list/lazy)' 0
run_batch_cell 'elastic(32,list/lazy)' 0.9
run_batch_cell 'sharded(1,list/lazy)' 0.9
run_wl_cell ycsb-b -alg 'sharded(32,list/lazy)'
run_wl_cell ycsb-b -alg 'list/lazy' -auto-spec
if [ -n "$CSDSD" ]; then
    run_net_cell 'sharded(8,list/lazy)' 127.0.0.1:21311
else
    echo "bench_grid.sh: no csdsd binary given; skipping the networked cell (CSV will not match the committed baseline)" >&2
fi
