#!/usr/bin/env sh
# bench_grid.sh — the fixed CI bench grid, emitted as one CSV.
#
# This is the single source of truth for the perf-trajectory grid: CI
# runs it on every push (uploading the CSV and its benchsnap JSON as
# artifacts), and the committed BENCH_baseline.json is the benchsnap
# conversion of one local run. Changing any axis here requires
# regenerating the baseline (and benchsnap's sample expectations):
#
#   go build -o csdsbench ./cmd/csdsbench
#   sh scripts/bench_grid.sh ./csdsbench > bench.csv
#   go run ./cmd/benchsnap -out BENCH_baseline.json bench.csv
#
# The grid is deliberately small — one plain structure against its
# hash-sharded and elastic composites, under the paper's 10%-update mix
# plus a 5% one-shot-scan and 5% paginated-cursor tail — so a CI runner
# finishes in a few seconds while still exposing the three throughput
# regimes (single instance, static partition, resizable partition) and
# all three op families (point, scan, page).
set -eu

BIN=${1:?usage: bench_grid.sh /path/to/csdsbench}

first=1
for alg in 'list/lazy' 'sharded(8,list/lazy)' 'elastic(8,list/lazy)'; do
    out=$("$BIN" -alg "$alg" -threads 4 -size 2048 -updates 0.1 \
        -scan-frac 0.05 -scan-len 64 \
        -cursor-frac 0.05 -page-len 16 \
        -dur 300ms -runs 2 -csv)
    if [ "$first" -eq 1 ]; then
        printf '%s\n' "$out"
        first=0
    else
        printf '%s\n' "$out" | tail -n 1
    fi
done
