#!/usr/bin/env sh
# chaos_smoke.sh — the CI wire-chaos smoke: boot csdsd under a
# server-side fault plan (forced busy sheds, torn connections, injected
# handler panics) with the idle-eviction timeout and the EBR watchdog
# armed, drive a csdsbench -net -fault chaos cell against it (client-side
# connection drops and delays over a fixed, seed-reproducible operation
# budget, with acked-write tracking), then SIGTERM the server.
#
# Pass criteria, all hard:
#   - the chaos cell exits 0, which already asserts zero lost
#     acknowledged writes (csdsbench verifies every acked key by Get);
#   - at least 5% of the cell's operations hit an injected fault or
#     engaged the retry/reissue discipline (the client plan's
#     op.delay every=17 alone guarantees ~5.9%);
#   - csdsd's graceful drain exits 0, which already asserts
#     retired == reclaimed (csdsd exits 1 on a reclamation leak).
set -eu

BENCH=${1:?usage: chaos_smoke.sh /path/to/csdsbench /path/to/csdsd [addr]}
CSDSD=${2:?usage: chaos_smoke.sh /path/to/csdsbench /path/to/csdsd [addr]}
ADDR=${3:-127.0.0.1:21713}

SERVER_PLAN='shed.busy:every=37;conn.torn:every=211;handler.panic:every=401;seed=11'
CLIENT_PLAN='conn.drop:every=29;op.delay:every=17,min=1us,max=20us;seed=3'

"$CSDSD" -addr "$ADDR" -alg 'sharded(8,hashtable/lazy)' -size 4096 \
    -fault "$SERVER_PLAN" -idle-timeout 5s -watchdog 250ms -quiet &
srv=$!

status=0
out=$("$BENCH" -net "$ADDR" -fault "$CLIENT_PLAN" -threads 2 -size 512 -runs 1) || status=$?
printf '%s\n' "$out"

kill -TERM "$srv"
if ! wait "$srv"; then
    echo "chaos_smoke: csdsd drain failed (leak or drain error)" >&2
    exit 1
fi

if [ "$status" -ne 0 ]; then
    echo "chaos_smoke: chaos cell failed (lost acked writes or worker error)" >&2
    exit 1
fi
if ! printf '%s\n' "$out" | grep -q 'all verified present'; then
    echo "chaos_smoke: report missing the acked-write verification line" >&2
    exit 1
fi
frac=$(printf '%s\n' "$out" | awk '/^fault hit frac/ {print $4}')
if [ -z "$frac" ]; then
    echo "chaos_smoke: report missing the fault hit frac line" >&2
    exit 1
fi
if ! awk -v f="$frac" 'BEGIN { exit (f >= 0.05) ? 0 : 1 }'; then
    echo "chaos_smoke: fault hit frac $frac below the 0.05 floor" >&2
    exit 1
fi
echo "chaos_smoke: ok (fault hit frac $frac)"
